// Package stats provides the statistical machinery the paper's analysis
// relies on: streaming sample moments, empirical distributions and their
// convolution (for composing median path quality, Section 6.1), Student-t
// quantiles and Welch confidence intervals for mean differences
// (Section 6.2), and cumulative distribution functions for every figure.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Accum accumulates samples with Welford's algorithm, giving numerically
// stable mean and variance in one pass.
type Accum struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (a *Accum) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples.
func (a *Accum) N() int { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accum) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (a *Accum) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accum) Std() float64 { return math.Sqrt(a.Var()) }

// Summary is the frozen form of an accumulator: enough to compose means
// and confidence intervals without the raw samples.
type Summary struct {
	N    int
	Mean float64
	Var  float64 // unbiased sample variance
}

// Summary freezes the accumulator.
func (a *Accum) Summary() Summary {
	return Summary{N: a.n, Mean: a.mean, Var: a.Var()}
}

// SE2 returns the squared standard error of the mean.
func (s Summary) SE2() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Var / float64(s.N)
}

// SumSummaries composes the summary of a sum of independent quantities:
// the synthetic alternate path's metric is the sum of its constituent
// edges' metrics, so means add and squared standard errors add ("the sum
// of the means is equal to the mean of the sums").
func SumSummaries(parts ...Summary) Summary {
	out := Summary{N: math.MaxInt}
	se2 := 0.0
	for _, p := range parts {
		out.Mean += p.Mean
		se2 += p.SE2()
		if p.N < out.N {
			out.N = p.N
		}
	}
	if len(parts) == 0 {
		out.N = 0
	}
	// Reconstruct a variance consistent with the combined SE2 at the
	// effective sample size, so downstream CI code works uniformly.
	if out.N > 0 && out.N != math.MaxInt {
		out.Var = se2 * float64(out.N)
	}
	return out
}

// welchDF returns the Welch–Satterthwaite effective degrees of freedom
// for the difference of two means.
func welchDF(a, b Summary) float64 {
	sa, sb := a.SE2(), b.SE2()
	num := (sa + sb) * (sa + sb)
	den := 0.0
	if a.N > 1 {
		den += sa * sa / float64(a.N-1)
	}
	if b.N > 1 {
		den += sb * sb / float64(b.N-1)
	}
	//repolint:allow floateq -- exact-zero guard: den is a sum of squares, zero only when every term is
	if den == 0 {
		return 1
	}
	df := num / den
	if df < 1 {
		df = 1
	}
	return df
}

// Verdict classifies a mean comparison at a confidence level.
type Verdict int

const (
	// Indeterminate: the confidence interval for the difference crosses
	// zero.
	Indeterminate Verdict = iota
	// FirstSmaller: the first mean is significantly smaller.
	FirstSmaller
	// FirstLarger: the first mean is significantly larger.
	FirstLarger
	// BothZero: every sample in both groups was exactly zero (used for
	// the paper's loss-rate Table 3 "is zero" column).
	BothZero
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Indeterminate:
		return "indeterminate"
	case FirstSmaller:
		return "first-smaller"
	case FirstLarger:
		return "first-larger"
	case BothZero:
		return "both-zero"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// CompareMeans runs a Welch t-test on the difference a.Mean - b.Mean at
// the given two-sided confidence level (e.g. 0.95) and classifies the
// result. Groups with no variance information (N < 2) are compared by CI
// width zero, matching the paper's treatment of exactly-measured paths.
func CompareMeans(a, b Summary, confidence float64) Verdict {
	//repolint:allow floateq -- BothZero classifies paths that never lost a packet: sums of exact zeros
	if a.N > 0 && b.N > 0 && a.Mean == 0 && b.Mean == 0 && a.Var == 0 && b.Var == 0 {
		return BothZero
	}
	diff := a.Mean - b.Mean
	se := math.Sqrt(a.SE2() + b.SE2())
	//repolint:allow floateq -- zero CI width means "exactly measured" per the paper; the sqrt of exact zeros
	if se == 0 {
		switch {
		case diff < 0:
			return FirstSmaller
		case diff > 0:
			return FirstLarger
		default:
			return Indeterminate
		}
	}
	tq := TQuantile(1-(1-confidence)/2, welchDF(a, b))
	half := tq * se
	switch {
	case diff+half < 0:
		return FirstSmaller
	case diff-half > 0:
		return FirstLarger
	default:
		return Indeterminate
	}
}

// MeanDiffCI returns the half-width of the two-sided confidence interval
// for a.Mean - b.Mean at the given confidence level.
func MeanDiffCI(a, b Summary, confidence float64) float64 {
	se := math.Sqrt(a.SE2() + b.SE2())
	//repolint:allow floateq -- zero CI width means "exactly measured" per the paper; the sqrt of exact zeros
	if se == 0 {
		return 0
	}
	return TQuantile(1-(1-confidence)/2, welchDF(a, b)) * se
}

// Quantile returns the q-quantile (0 <= q <= 1) of the data using linear
// interpolation between order statistics. It sorts a copy.
func Quantile(data []float64, q float64) (float64, error) {
	if len(data) == 0 {
		return 0, errors.New("stats: quantile of empty data")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %f out of [0,1]", q)
	}
	s := make([]float64, len(data))
	copy(s, data)
	sort.Float64s(s)
	return quantileSorted(s, q), nil
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the sample median.
func Median(data []float64) (float64, error) { return Quantile(data, 0.5) }

// Mean returns the arithmetic mean.
func Mean(data []float64) (float64, error) {
	if len(data) == 0 {
		return 0, errors.New("stats: mean of empty data")
	}
	sum := 0.0
	for _, x := range data {
		sum += x
	}
	return sum / float64(len(data)), nil
}
