package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumKnownValues(t *testing.T) {
	var a Accum
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d, want 8", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %f, want 5", a.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if want := 32.0 / 7.0; math.Abs(a.Var()-want) > 1e-12 {
		t.Errorf("Var = %f, want %f", a.Var(), want)
	}
}

func TestAccumEmptyAndSingle(t *testing.T) {
	var a Accum
	if a.Mean() != 0 || a.Var() != 0 || a.N() != 0 {
		t.Error("empty accumulator should be zero")
	}
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Var() != 0 {
		t.Errorf("single sample: mean %f var %f", a.Mean(), a.Var())
	}
}

func TestAccumMatchesDirectComputation(t *testing.T) {
	f := func(raw []float64) bool {
		var data []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				data = append(data, x)
			}
		}
		if len(data) < 2 {
			return true
		}
		var a Accum
		sum := 0.0
		for _, x := range data {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(data))
		ss := 0.0
		for _, x := range data {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(len(data)-1)
		scale := 1 + math.Abs(mean) + v
		return math.Abs(a.Mean()-mean) < 1e-8*scale && math.Abs(a.Var()-v) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarySE2(t *testing.T) {
	s := Summary{N: 25, Mean: 10, Var: 100}
	if s.SE2() != 4 {
		t.Errorf("SE2 = %f, want 4", s.SE2())
	}
	if (Summary{}).SE2() != 0 {
		t.Error("empty summary SE2 should be 0")
	}
}

func TestSumSummaries(t *testing.T) {
	a := Summary{N: 100, Mean: 10, Var: 4}
	b := Summary{N: 50, Mean: 20, Var: 9}
	s := SumSummaries(a, b)
	if s.Mean != 30 {
		t.Errorf("sum mean = %f, want 30", s.Mean)
	}
	if s.N != 50 {
		t.Errorf("effective N = %d, want 50 (min)", s.N)
	}
	wantSE2 := 4.0/100 + 9.0/50
	if math.Abs(s.SE2()-wantSE2) > 1e-12 {
		t.Errorf("SE2 = %f, want %f", s.SE2(), wantSE2)
	}
	if got := SumSummaries(); got.N != 0 || got.Mean != 0 {
		t.Errorf("empty sum = %+v", got)
	}
}

func TestSumSummariesAssociativeMean(t *testing.T) {
	f := func(m1, m2, m3 float64) bool {
		if math.IsNaN(m1) || math.IsNaN(m2) || math.IsNaN(m3) ||
			math.Abs(m1) > 1e9 || math.Abs(m2) > 1e9 || math.Abs(m3) > 1e9 {
			return true
		}
		a := Summary{N: 10, Mean: m1, Var: 1}
		b := Summary{N: 10, Mean: m2, Var: 1}
		c := Summary{N: 10, Mean: m3, Var: 1}
		s1 := SumSummaries(SumSummaries(a, b), c)
		s2 := SumSummaries(a, SumSummaries(b, c))
		return math.Abs(s1.Mean-s2.Mean) < 1e-6*(1+math.Abs(s1.Mean))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Classic t-table values for t_{0.975, v}.
	cases := []struct {
		v    float64
		want float64
	}{
		{1, 12.706},
		{2, 4.303},
		{5, 2.571},
		{10, 2.228},
		{30, 2.042},
		{100, 1.984},
		{1e6, 1.960},
	}
	for _, c := range cases {
		got := TQuantile(0.975, c.v)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("TQuantile(0.975, %g) = %f, want %f", c.v, got, c.want)
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, v := range []float64{1, 3, 7, 29} {
		for _, p := range []float64{0.6, 0.9, 0.99} {
			a := TQuantile(p, v)
			b := TQuantile(1-p, v)
			if math.Abs(a+b) > 1e-6 {
				t.Errorf("TQuantile not symmetric at p=%f v=%f: %f vs %f", p, v, a, b)
			}
		}
	}
	if TQuantile(0.5, 5) != 0 {
		t.Error("median of t distribution should be 0")
	}
}

func TestTCDFInvertsQuantile(t *testing.T) {
	for _, v := range []float64{2, 9, 40} {
		for _, p := range []float64{0.55, 0.75, 0.975, 0.999} {
			x := TQuantile(p, v)
			if got := TCDF(x, v); math.Abs(got-p) > 1e-6 {
				t.Errorf("TCDF(TQuantile(%f,%g)) = %f", p, v, got)
			}
		}
	}
}

func TestTQuantileBadInput(t *testing.T) {
	for _, x := range []float64{TQuantile(0, 5), TQuantile(1, 5), TQuantile(0.5, 0), TQuantile(math.NaN(), 5)} {
		if !math.IsNaN(x) {
			t.Errorf("expected NaN for bad input, got %f", x)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("RegIncBeta endpoints wrong")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("RegIncBeta(1,1,%f) = %f", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.7} {
		a, b := 2.5, 4.0
		if got := RegIncBeta(a, b, x) + RegIncBeta(b, a, 1-x); math.Abs(got-1) > 1e-10 {
			t.Errorf("RegIncBeta symmetry violated at %f: %f", x, got)
		}
	}
}

func TestCompareMeansClearCases(t *testing.T) {
	big := Summary{N: 100, Mean: 100, Var: 1}
	small := Summary{N: 100, Mean: 10, Var: 1}
	if v := CompareMeans(small, big, 0.95); v != FirstSmaller {
		t.Errorf("got %v, want FirstSmaller", v)
	}
	if v := CompareMeans(big, small, 0.95); v != FirstLarger {
		t.Errorf("got %v, want FirstLarger", v)
	}
	// Huge variance makes the comparison indeterminate.
	noisy1 := Summary{N: 5, Mean: 10, Var: 10000}
	noisy2 := Summary{N: 5, Mean: 11, Var: 10000}
	if v := CompareMeans(noisy1, noisy2, 0.95); v != Indeterminate {
		t.Errorf("got %v, want Indeterminate", v)
	}
	zero := Summary{N: 30, Mean: 0, Var: 0}
	if v := CompareMeans(zero, zero, 0.95); v != BothZero {
		t.Errorf("got %v, want BothZero", v)
	}
}

func TestCompareMeansZeroVariance(t *testing.T) {
	a := Summary{N: 3, Mean: 5, Var: 0}
	b := Summary{N: 3, Mean: 7, Var: 0}
	if v := CompareMeans(a, b, 0.95); v != FirstSmaller {
		t.Errorf("got %v, want FirstSmaller", v)
	}
	if v := CompareMeans(b, a, 0.95); v != FirstLarger {
		t.Errorf("got %v, want FirstLarger", v)
	}
	if v := CompareMeans(a, a, 0.95); v != Indeterminate {
		t.Errorf("got %v, want Indeterminate (same nonzero mean)", v)
	}
}

func TestCompareMeansConsistentWithCI(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		a := Summary{N: 5 + rng.Intn(100), Mean: rng.NormFloat64() * 10, Var: rng.Float64() * 50}
		b := Summary{N: 5 + rng.Intn(100), Mean: rng.NormFloat64() * 10, Var: rng.Float64() * 50}
		half := MeanDiffCI(a, b, 0.95)
		diff := a.Mean - b.Mean
		v := CompareMeans(a, b, 0.95)
		switch {
		case diff+half < 0 && v != FirstSmaller:
			t.Fatalf("CI says smaller but verdict %v", v)
		case diff-half > 0 && v != FirstLarger:
			t.Fatalf("CI says larger but verdict %v", v)
		case diff-half <= 0 && diff+half >= 0 && v != Indeterminate:
			t.Fatalf("CI crosses zero but verdict %v", v)
		}
	}
}

func TestCompareMeansFalsePositiveRate(t *testing.T) {
	// Two identical normal populations: the 95% test should call a
	// significant difference in roughly 5% of trials.
	rng := rand.New(rand.NewSource(99))
	falsePos := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		var a, b Accum
		for j := 0; j < 30; j++ {
			a.Add(rng.NormFloat64())
			b.Add(rng.NormFloat64())
		}
		if v := CompareMeans(a.Summary(), b.Summary(), 0.95); v != Indeterminate {
			falsePos++
		}
	}
	rate := float64(falsePos) / trials
	if rate > 0.09 || rate < 0.01 {
		t.Errorf("false positive rate %f, want ~0.05", rate)
	}
}

func TestQuantileAndMedian(t *testing.T) {
	data := []float64{5, 1, 4, 2, 3}
	if m, err := Median(data); err != nil || m != 3 {
		t.Errorf("Median = %f, %v", m, err)
	}
	if q, _ := Quantile(data, 0); q != 1 {
		t.Errorf("q0 = %f", q)
	}
	if q, _ := Quantile(data, 1); q != 5 {
		t.Errorf("q1 = %f", q)
	}
	if q, _ := Quantile(data, 0.25); q != 2 {
		t.Errorf("q.25 = %f", q)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile should error")
	}
	if _, err := Quantile(data, 1.5); err == nil {
		t.Error("out-of-range q should error")
	}
	if _, err := Mean(nil); err == nil {
		t.Error("empty mean should error")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	data := []float64{3, 1, 2}
	_, _ = Quantile(data, 0.5)
	if data[0] != 3 || data[1] != 1 || data[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		var data []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				data = append(data, x)
			}
		}
		if len(data) == 0 {
			return true
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		qa, err1 := Quantile(data, a)
		qb, err2 := Quantile(data, b)
		return err1 == nil && err2 == nil && qa <= qb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Indeterminate: "indeterminate", FirstSmaller: "first-smaller",
		FirstLarger: "first-larger", BothZero: "both-zero", Verdict(9): "verdict(9)",
	} {
		if v.String() != want {
			t.Errorf("Verdict(%d) = %q, want %q", int(v), v.String(), want)
		}
	}
}
