package stats

import (
	"math"
	"testing"
)

// FuzzQuantile ensures Quantile never panics and respects ordering on
// arbitrary inputs.
func FuzzQuantile(f *testing.F) {
	f.Add(float64(1), float64(2), float64(3), 0.5)
	f.Add(math.NaN(), math.Inf(1), -0.0, 0.1)
	f.Add(float64(-1e308), float64(1e308), float64(0), 0.99)
	f.Fuzz(func(t *testing.T, a, b, c, q float64) {
		data := []float64{a, b, c}
		v, err := Quantile(data, q)
		if q < 0 || q > 1 || math.IsNaN(q) {
			if err == nil {
				t.Fatalf("out-of-range q %f accepted", q)
			}
			return
		}
		if err != nil {
			return
		}
		_ = v
		lo, err1 := Quantile(data, 0)
		hi, err2 := Quantile(data, 1)
		if err1 != nil || err2 != nil {
			t.Fatal("endpoint quantiles failed")
		}
		// NaNs poison comparisons; only check ordering for clean data.
		if !math.IsNaN(a) && !math.IsNaN(b) && !math.IsNaN(c) {
			if v < lo || v > hi {
				t.Fatalf("quantile %f outside [%f, %f]", v, lo, hi)
			}
		}
	})
}
