package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistBasics(t *testing.T) {
	d := NewDist([]float64{3, 1, 2})
	if d.N() != 3 {
		t.Errorf("N = %d", d.N())
	}
	s := d.Samples()
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Errorf("not sorted: %v", s)
	}
	if m, _ := d.Median(); m != 2 {
		t.Errorf("median %f", m)
	}
	if m, _ := d.Mean(); m != 2 {
		t.Errorf("mean %f", m)
	}
	if _, err := (Dist{}).Median(); err == nil {
		t.Error("empty median should error")
	}
	if _, err := d.Quantile(-1); err == nil {
		t.Error("bad quantile should error")
	}
}

func TestDistThin(t *testing.T) {
	var raw []float64
	for i := 0; i < 1000; i++ {
		raw = append(raw, float64(i))
	}
	d := NewDist(raw)
	thin := d.Thin(10)
	if thin.N() != 10 {
		t.Fatalf("thinned to %d, want 10", thin.N())
	}
	mOrig, _ := d.Median()
	mThin, _ := thin.Median()
	if math.Abs(mOrig-mThin) > 50 {
		t.Errorf("thinning moved the median %f -> %f", mOrig, mThin)
	}
	// Thinning something already small is a no-op.
	small := NewDist([]float64{1, 2})
	if small.Thin(10).N() != 2 {
		t.Error("thin should not grow a distribution")
	}
}

func TestConvolveShiftsByConstant(t *testing.T) {
	// Convolving with a point mass at c shifts the whole distribution.
	d := NewDist([]float64{1, 2, 3, 4, 100})
	c := NewDist([]float64{10})
	sum, err := d.Convolve(c)
	if err != nil {
		t.Fatal(err)
	}
	mD, _ := d.Median()
	mS, _ := sum.Median()
	if math.Abs(mS-(mD+10)) > 1e-9 {
		t.Errorf("median of shift: %f, want %f", mS, mD+10)
	}
}

func TestConvolveMeansAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var a, b []float64
	for i := 0; i < 300; i++ {
		a = append(a, rng.ExpFloat64()*20)
		b = append(b, 50+rng.NormFloat64()*5)
	}
	da, db := NewDist(a), NewDist(b)
	sum, err := da.Convolve(db)
	if err != nil {
		t.Fatal(err)
	}
	ma, _ := da.Mean()
	mb, _ := db.Mean()
	ms, _ := sum.Mean()
	if math.Abs(ms-(ma+mb)) > 1.5 {
		t.Errorf("convolved mean %f, want ~%f", ms, ma+mb)
	}
}

func TestConvolveMedianOfNormalsAdds(t *testing.T) {
	// For symmetric distributions the medians add under convolution.
	rng := rand.New(rand.NewSource(3))
	var a, b []float64
	for i := 0; i < 500; i++ {
		a = append(a, 30+rng.NormFloat64()*3)
		b = append(b, 70+rng.NormFloat64()*7)
	}
	sum, err := NewDist(a).Convolve(NewDist(b))
	if err != nil {
		t.Fatal(err)
	}
	m, _ := sum.Median()
	if math.Abs(m-100) > 1.5 {
		t.Errorf("median of sum %f, want ~100", m)
	}
}

func TestConvolveEmpty(t *testing.T) {
	d := NewDist([]float64{1})
	if _, err := d.Convolve(Dist{}); err == nil {
		t.Error("convolve with empty should error")
	}
	if _, err := (Dist{}).Convolve(d); err == nil {
		t.Error("convolve from empty should error")
	}
}

func TestConvolveCommutativeMedian(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		var a, b []float64
		for _, x := range rawA {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				a = append(a, x)
			}
		}
		for _, x := range rawB {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				b = append(b, x)
			}
		}
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		ab, err1 := NewDist(a).Convolve(NewDist(b))
		ba, err2 := NewDist(b).Convolve(NewDist(a))
		if err1 != nil || err2 != nil {
			return false
		}
		m1, _ := ab.Median()
		m2, _ := ba.Median()
		return math.Abs(m1-m2) < 1e-6*(1+math.Abs(m1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{10, -5, 0, 20})
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if f := c.FractionBelow(0); f != 0.5 {
		t.Errorf("FractionBelow(0) = %f, want 0.5", f)
	}
	if f := c.FractionBelow(-10); f != 0 {
		t.Errorf("FractionBelow(-10) = %f, want 0", f)
	}
	if f := c.FractionBelow(100); f != 1 {
		t.Errorf("FractionBelow(100) = %f, want 1", f)
	}
	if f := c.FractionAbove(0); f != 0.5 {
		t.Errorf("FractionAbove(0) = %f, want 0.5", f)
	}
	if q, _ := c.Quantile(0); q != -5 {
		t.Errorf("q0 = %f", q)
	}
	if _, err := c.Quantile(2); err == nil {
		t.Error("bad quantile should error")
	}
	if _, err := NewCDF(nil).Quantile(0.5); err == nil {
		t.Error("empty CDF quantile should error")
	}
	if !math.IsNaN(NewCDF(nil).FractionBelow(1)) {
		t.Error("empty CDF fraction should be NaN")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Points()
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 1 || pts[0].Frac != 0.25 {
		t.Errorf("first point %+v", pts[0])
	}
	if pts[3].X != 4 || pts[3].Frac != 1 {
		t.Errorf("last point %+v", pts[3])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Frac <= pts[i-1].Frac {
			t.Errorf("points not monotone at %d", i)
		}
	}
}

func TestCDFTrimmed(t *testing.T) {
	c := NewCDF([]float64{-100, -1, 0, 1, 100})
	tr := c.Trimmed(-10, 10)
	if tr.N() != 3 {
		t.Errorf("trimmed N = %d, want 3", tr.N())
	}
	if tr.FractionBelow(0) != 2.0/3.0 {
		t.Errorf("trimmed fraction = %f", tr.FractionBelow(0))
	}
}

func TestCDFFractionBelowMonotone(t *testing.T) {
	f := func(raw []float64, x1, x2 float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 || math.IsNaN(x1) || math.IsNaN(x2) {
			return true
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		c := NewCDF(vals)
		return c.FractionBelow(x1) <= c.FractionBelow(x2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
