package igp

import (
	"testing"

	"pathsel/internal/topology"
)

func BenchmarkNew(b *testing.B) {
	top, err := topology.Generate(topology.DefaultConfig(topology.Era1999))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(top, DefaultConfig())
		if _, ok := g.Dist(top.Routers[0].ID, top.Routers[0].ID); !ok {
			b.Fatal("missing self distance")
		}
	}
}
