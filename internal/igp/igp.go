// Package igp implements interior gateway routing: shortest paths between
// routers within a single autonomous system.
//
// Following the paper's Section 3, small (stub) ASes route on raw hop
// count while larger ASes set administrative metrics that track
// propagation delay ("most larger AS's set internal metrics manually to
// distribute load and to avoid using links with excessive propagation
// delay"). The metric choice is per-AS-class and configurable.
package igp

import (
	"container/heap"
	"fmt"

	"pathsel/internal/topology"
)

// Metric selects the link cost used for intra-AS shortest paths.
type Metric int

const (
	// HopCount charges 1 per link.
	HopCount Metric = iota
	// Delay charges the link's propagation delay in ms.
	Delay
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case HopCount:
		return "hop-count"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Config selects the metric per AS class.
type Config struct {
	StubMetric    Metric
	TransitMetric Metric
	Tier1Metric   Metric
}

// DefaultConfig mirrors the paper's description: stubs use hop count,
// larger networks use delay-correlated administrative weights.
func DefaultConfig() Config {
	return Config{StubMetric: HopCount, TransitMetric: Delay, Tier1Metric: Delay}
}

// IGP holds the converged intra-AS routing state for every AS in a
// topology: all-pairs shortest paths computed per AS.
type IGP struct {
	top *topology.Topology
	cfg Config

	// nextLink[from][to] is the first link on the shortest path from
	// router from to router to (both must be in the same AS); 0 links
	// means unreachable or from==to. Indexed by global RouterID.
	nextLink map[topology.RouterID]map[topology.RouterID]topology.LinkID
	dist     map[topology.RouterID]map[topology.RouterID]float64
	// delay[from][to] is the propagation-delay sum along the chosen
	// path, regardless of metric (used for hot-potato comparisons and
	// by the network simulator).
	delay map[topology.RouterID]map[topology.RouterID]float64
}

// New computes intra-AS routing for the whole topology.
func New(top *topology.Topology, cfg Config) *IGP {
	g := &IGP{
		top:      top,
		cfg:      cfg,
		nextLink: map[topology.RouterID]map[topology.RouterID]topology.LinkID{},
		dist:     map[topology.RouterID]map[topology.RouterID]float64{},
		delay:    map[topology.RouterID]map[topology.RouterID]float64{},
	}
	for _, as := range top.ASList {
		metric := cfg.StubMetric
		switch as.Class {
		case topology.Tier1:
			metric = cfg.Tier1Metric
		case topology.Transit:
			metric = cfg.TransitMetric
		}
		for _, r := range as.Routers {
			g.runDijkstra(r, metric)
		}
	}
	return g
}

func linkCost(l *topology.Link, m Metric) float64 {
	if m == HopCount {
		return 1
	}
	return l.PropDelayMs
}

type pqItem struct {
	router topology.RouterID
	dist   float64
	index  int
}

type priorityQueue []*pqItem

func (pq priorityQueue) Len() int { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool {
	if pq[i].dist != pq[j].dist {
		return pq[i].dist < pq[j].dist
	}
	return pq[i].router < pq[j].router // deterministic tiebreak
}
func (pq priorityQueue) Swap(i, j int) {
	pq[i], pq[j] = pq[j], pq[i]
	pq[i].index = i
	pq[j].index = j
}
func (pq *priorityQueue) Push(x any) {
	it := x.(*pqItem)
	it.index = len(*pq)
	*pq = append(*pq, it)
}
func (pq *priorityQueue) Pop() any {
	old := *pq
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*pq = old[:n-1]
	return it
}

// runDijkstra computes shortest paths from src to all routers in its AS.
func (g *IGP) runDijkstra(src topology.RouterID, metric Metric) {
	asn := g.top.Router(src).AS
	distTo := map[topology.RouterID]float64{src: 0}
	delayTo := map[topology.RouterID]float64{src: 0}
	// firstLink[r] is the first link of the path src->r.
	firstLink := map[topology.RouterID]topology.LinkID{}
	visited := map[topology.RouterID]bool{}

	pq := &priorityQueue{}
	heap.Init(pq)
	heap.Push(pq, &pqItem{router: src, dist: 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(*pqItem)
		u := it.router
		if visited[u] {
			continue
		}
		visited[u] = true
		for _, lid := range g.top.OutLinks(u) {
			l := g.top.Link(lid)
			if l.Rel != topology.Internal || g.top.Router(l.To).AS != asn {
				continue
			}
			v := l.To
			nd := distTo[u] + linkCost(l, metric)
			old, seen := distTo[v]
			if !seen || nd < old-1e-12 {
				distTo[v] = nd
				delayTo[v] = delayTo[u] + l.PropDelayMs
				if u == src {
					firstLink[v] = lid
				} else {
					firstLink[v] = firstLink[u]
				}
				heap.Push(pq, &pqItem{router: v, dist: nd})
			}
		}
	}

	g.dist[src] = distTo
	g.delay[src] = delayTo
	g.nextLink[src] = firstLink
}

// Dist returns the IGP metric distance between two routers of the same
// AS, and whether to is reachable from from.
func (g *IGP) Dist(from, to topology.RouterID) (float64, bool) {
	d, ok := g.dist[from][to]
	return d, ok
}

// Delay returns the propagation-delay sum in ms along the chosen
// intra-AS path, and whether to is reachable.
func (g *IGP) Delay(from, to topology.RouterID) (float64, bool) {
	d, ok := g.delay[from][to]
	return d, ok
}

// Path returns the link IDs of the shortest intra-AS path from from to
// to. It returns an empty path for from == to, and ok=false when the
// routers are in different ASes or disconnected.
func (g *IGP) Path(from, to topology.RouterID) ([]topology.LinkID, bool) {
	if from == to {
		return nil, true
	}
	if g.top.Router(from) == nil || g.top.Router(to) == nil ||
		g.top.Router(from).AS != g.top.Router(to).AS {
		return nil, false
	}
	var path []topology.LinkID
	cur := from
	for cur != to {
		lid, ok := g.nextLink[cur][to]
		if !ok {
			return nil, false
		}
		path = append(path, lid)
		cur = g.top.Link(lid).To
		if len(path) > len(g.top.Routers) {
			// Defensive: should be impossible with consistent tables.
			return nil, false
		}
	}
	return path, true
}
