// Package igp implements interior gateway routing: shortest paths between
// routers within a single autonomous system.
//
// Following the paper's Section 3, small (stub) ASes route on raw hop
// count while larger ASes set administrative metrics that track
// propagation delay ("most larger AS's set internal metrics manually to
// distribute load and to avoid using links with excessive propagation
// delay"). The metric choice is per-AS-class and configurable.
//
// Routing state is stored per AS as flat all-pairs arrays over local
// router indices rather than nested maps, so a planet-scale topology's
// IGP (dominated by thousands of tiny stub ASes) costs a few contiguous
// slabs per AS instead of millions of small map allocations.
package igp

import (
	"fmt"
	"math"

	"pathsel/internal/topology"
)

// Metric selects the link cost used for intra-AS shortest paths.
type Metric int

const (
	// HopCount charges 1 per link.
	HopCount Metric = iota
	// Delay charges the link's propagation delay in ms.
	Delay
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case HopCount:
		return "hop-count"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Config selects the metric per AS class.
type Config struct {
	StubMetric    Metric
	TransitMetric Metric
	Tier1Metric   Metric
}

// DefaultConfig mirrors the paper's description: stubs use hop count,
// larger networks use delay-correlated administrative weights.
func DefaultConfig() Config {
	return Config{StubMetric: HopCount, TransitMetric: Delay, Tier1Metric: Delay}
}

// asTable holds one AS's converged all-pairs state over local router
// indices 0..n-1 (the order of AS.Routers). Cell [from*n+to] describes
// the shortest path from local router from to local router to;
// unreachable cells hold math.MaxFloat64 / noLink.
type asTable struct {
	n     int
	dist  []float64
	delay []float64
	// next[from*n+to] is the first link on the path, noLink when
	// unreachable or from == to.
	next []topology.LinkID
}

const noLink = topology.LinkID(-1)

const unreachable = math.MaxFloat64

// IGP holds the converged intra-AS routing state for every AS in a
// topology: all-pairs shortest paths computed per AS.
type IGP struct {
	top *topology.Topology
	cfg Config

	// tabOf[r] is router r's AS table; loc[r] its local index there.
	tabOf []*asTable
	loc   []int32
}

// New computes intra-AS routing for the whole topology.
func New(top *topology.Topology, cfg Config) *IGP {
	g := &IGP{
		top:   top,
		cfg:   cfg,
		tabOf: make([]*asTable, len(top.Routers)),
		loc:   make([]int32, len(top.Routers)),
	}
	// Shared per-run scratch, sized to the largest AS.
	maxN := 0
	for _, as := range top.ASList {
		if len(as.Routers) > maxN {
			maxN = len(as.Routers)
		}
	}
	visited := make([]bool, maxN)
	var h igpHeap
	// localOf maps global router ID -> local index for the AS being
	// solved; global IDs are dense, so a flat array beats a map.
	localOf := make([]int32, len(top.Routers))

	for _, as := range top.ASList {
		metric := cfg.StubMetric
		switch as.Class {
		case topology.Tier1:
			metric = cfg.Tier1Metric
		case topology.Transit:
			metric = cfg.TransitMetric
		}
		n := len(as.Routers)
		t := &asTable{
			n:     n,
			dist:  make([]float64, n*n),
			delay: make([]float64, n*n),
			next:  make([]topology.LinkID, n*n),
		}
		for i, r := range as.Routers {
			g.tabOf[r] = t
			g.loc[r] = int32(i)
			localOf[r] = int32(i)
		}
		for i, r := range as.Routers {
			base := i * n
			g.runDijkstra(t, as.ASN, r, metric,
				t.dist[base:base+n], t.delay[base:base+n], t.next[base:base+n],
				localOf, visited[:n], &h)
		}
	}
	return g
}

func linkCost(l *topology.Link, m Metric) float64 {
	if m == HopCount {
		return 1
	}
	return l.PropDelayMs
}

// igpItem orders the frontier by (dist, global router ID): the ID
// tiebreak keeps the expansion order — and therefore equal-cost path
// choices — deterministic.
type igpItem struct {
	router topology.RouterID
	dist   float64
}

func igpLess(a, b igpItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.router < b.router
}

// igpHeap is a value-type binary min-heap; no interface boxing, and the
// backing slice is reused across runs.
type igpHeap []igpItem

func (h *igpHeap) push(it igpItem) {
	q := append(*h, it)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !igpLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *igpHeap) pop() igpItem {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q) && igpLess(q[l], q[small]) {
			small = l
		}
		if r < len(q) && igpLess(q[r], q[small]) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	*h = q
	return top
}

// runDijkstra computes shortest paths from src to all routers in its AS,
// filling the source's rows of the flat table.
func (g *IGP) runDijkstra(t *asTable, asn topology.ASN, src topology.RouterID, metric Metric,
	dist, delay []float64, next []topology.LinkID, localOf []int32, visited []bool, h *igpHeap) {
	for i := range dist {
		dist[i] = unreachable
		delay[i] = unreachable
		next[i] = noLink
		visited[i] = false
	}
	srcLoc := int(localOf[src])
	dist[srcLoc] = 0
	delay[srcLoc] = 0

	*h = (*h)[:0]
	h.push(igpItem{router: src, dist: 0})
	for len(*h) > 0 {
		it := h.pop()
		u := it.router
		ul := int(localOf[u])
		if visited[ul] {
			continue
		}
		visited[ul] = true
		for _, lid := range g.top.OutLinks(u) {
			l := g.top.Link(lid)
			if l.Rel != topology.Internal || g.top.Router(l.To).AS != asn {
				continue
			}
			vl := int(localOf[l.To])
			nd := dist[ul] + linkCost(l, metric)
			if nd < dist[vl]-1e-12 {
				dist[vl] = nd
				delay[vl] = delay[ul] + l.PropDelayMs
				if u == src {
					next[vl] = lid
				} else {
					next[vl] = next[ul]
				}
				h.push(igpItem{router: l.To, dist: nd})
			}
		}
	}
}

// cell resolves a router pair to its table cell, reporting ok=false for
// unknown routers or routers in different ASes.
func (g *IGP) cell(from, to topology.RouterID) (*asTable, int, bool) {
	if int(from) < 0 || int(from) >= len(g.tabOf) || int(to) < 0 || int(to) >= len(g.tabOf) {
		return nil, 0, false
	}
	t := g.tabOf[from]
	if t == nil || g.tabOf[to] != t {
		return nil, 0, false
	}
	return t, int(g.loc[from])*t.n + int(g.loc[to]), true
}

// Dist returns the IGP metric distance between two routers of the same
// AS, and whether to is reachable from from.
func (g *IGP) Dist(from, to topology.RouterID) (float64, bool) {
	t, c, ok := g.cell(from, to)
	if !ok || t.dist[c] == unreachable {
		return 0, false
	}
	return t.dist[c], true
}

// Delay returns the propagation-delay sum in ms along the chosen
// intra-AS path, and whether to is reachable.
func (g *IGP) Delay(from, to topology.RouterID) (float64, bool) {
	t, c, ok := g.cell(from, to)
	if !ok || t.delay[c] == unreachable {
		return 0, false
	}
	return t.delay[c], true
}

// Path returns the link IDs of the shortest intra-AS path from from to
// to. It returns an empty path for from == to, and ok=false when the
// routers are in different ASes or disconnected.
func (g *IGP) Path(from, to topology.RouterID) ([]topology.LinkID, bool) {
	if from == to {
		return nil, true
	}
	t, _, ok := g.cell(from, to)
	if !ok {
		return nil, false
	}
	var path []topology.LinkID
	cur := from
	for cur != to {
		lid := t.next[int(g.loc[cur])*t.n+int(g.loc[to])]
		if lid == noLink {
			return nil, false
		}
		path = append(path, lid)
		cur = g.top.Link(lid).To
		if len(path) > len(g.top.Routers) {
			// Defensive: should be impossible with consistent tables.
			return nil, false
		}
	}
	return path, true
}
