package igp

import (
	"math"
	"testing"

	"pathsel/internal/topology"
)

func testTopology(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.Generate(topology.DefaultConfig(topology.Era1999))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return top
}

func TestAllPairsReachableWithinAS(t *testing.T) {
	top := testTopology(t)
	g := New(top, DefaultConfig())
	for _, as := range top.ASList {
		for _, a := range as.Routers {
			for _, b := range as.Routers {
				if _, ok := g.Dist(a, b); !ok {
					t.Fatalf("AS %d: router %d cannot reach %d", as.ASN, a, b)
				}
				if _, ok := g.Path(a, b); !ok {
					t.Fatalf("AS %d: no path %d -> %d", as.ASN, a, b)
				}
			}
		}
	}
}

func TestPathEndpointsAndContinuity(t *testing.T) {
	top := testTopology(t)
	g := New(top, DefaultConfig())
	for _, as := range top.ASList {
		for _, a := range as.Routers {
			for _, b := range as.Routers {
				path, ok := g.Path(a, b)
				if !ok {
					t.Fatalf("no path %d -> %d", a, b)
				}
				if a == b {
					if len(path) != 0 {
						t.Fatalf("self path should be empty, got %d links", len(path))
					}
					continue
				}
				cur := a
				for _, lid := range path {
					l := top.Link(lid)
					if l.From != cur {
						t.Fatalf("discontinuous path at link %d: at router %d, link starts at %d", lid, cur, l.From)
					}
					if l.Rel != topology.Internal {
						t.Fatalf("IGP path crosses inter-AS link %d", lid)
					}
					cur = l.To
				}
				if cur != b {
					t.Fatalf("path %d -> %d ends at %d", a, b, cur)
				}
			}
		}
	}
}

func TestDistMatchesPathCost(t *testing.T) {
	top := testTopology(t)
	g := New(top, DefaultConfig())
	cfg := DefaultConfig()
	for _, as := range top.ASList {
		metric := cfg.StubMetric
		switch as.Class {
		case topology.Tier1:
			metric = cfg.Tier1Metric
		case topology.Transit:
			metric = cfg.TransitMetric
		}
		for _, a := range as.Routers {
			for _, b := range as.Routers {
				path, _ := g.Path(a, b)
				want := 0.0
				delay := 0.0
				for _, lid := range path {
					want += linkCost(top.Link(lid), metric)
					delay += top.Link(lid).PropDelayMs
				}
				got, _ := g.Dist(a, b)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("Dist(%d,%d) = %f but path cost is %f", a, b, got, want)
				}
				gotDelay, _ := g.Delay(a, b)
				if math.Abs(gotDelay-delay) > 1e-9 {
					t.Fatalf("Delay(%d,%d) = %f but path delay is %f", a, b, gotDelay, delay)
				}
			}
		}
	}
}

func TestDistSymmetricForSymmetricTopology(t *testing.T) {
	// Links are generated in symmetric pairs with equal delay, so the
	// shortest-path metric must be symmetric even if the chosen paths
	// differ.
	top := testTopology(t)
	g := New(top, DefaultConfig())
	for _, as := range top.ASList {
		for _, a := range as.Routers {
			for _, b := range as.Routers {
				d1, _ := g.Dist(a, b)
				d2, _ := g.Dist(b, a)
				if math.Abs(d1-d2) > 1e-9 {
					t.Fatalf("asymmetric IGP distance %d<->%d: %f vs %f", a, b, d1, d2)
				}
			}
		}
	}
}

func TestTriangleInequalityOnDistances(t *testing.T) {
	top := testTopology(t)
	g := New(top, DefaultConfig())
	for _, as := range top.ASList {
		rs := as.Routers
		if len(rs) < 3 {
			continue
		}
		for i := 0; i < len(rs); i++ {
			for j := 0; j < len(rs); j++ {
				for k := 0; k < len(rs); k++ {
					dij, _ := g.Dist(rs[i], rs[j])
					djk, _ := g.Dist(rs[j], rs[k])
					dik, _ := g.Dist(rs[i], rs[k])
					if dik > dij+djk+1e-9 {
						t.Fatalf("triangle violation in AS %d: d(%d,%d)=%f > %f+%f",
							as.ASN, rs[i], rs[k], dik, dij, djk)
					}
				}
			}
		}
	}
}

func TestCrossASPathRefused(t *testing.T) {
	top := testTopology(t)
	g := New(top, DefaultConfig())
	var a, b topology.RouterID
	found := false
	for _, r := range top.Routers {
		if r.AS != top.Routers[0].AS {
			a, b = top.Routers[0].ID, r.ID
			found = true
			break
		}
	}
	if !found {
		t.Fatal("expected routers in more than one AS")
	}
	if _, ok := g.Path(a, b); ok {
		t.Error("Path across ASes should fail")
	}
	if _, ok := g.Dist(a, b); ok {
		t.Error("Dist across ASes should fail")
	}
}

func TestMetricString(t *testing.T) {
	if HopCount.String() != "hop-count" || Delay.String() != "delay" {
		t.Error("metric strings wrong")
	}
	if Metric(9).String() != "metric(9)" {
		t.Error("unknown metric string wrong")
	}
}

func TestHopCountMetricCountsLinks(t *testing.T) {
	top := testTopology(t)
	cfg := Config{StubMetric: HopCount, TransitMetric: HopCount, Tier1Metric: HopCount}
	g := New(top, cfg)
	for _, as := range top.ASList {
		for _, a := range as.Routers {
			for _, b := range as.Routers {
				path, _ := g.Path(a, b)
				d, _ := g.Dist(a, b)
				if d != float64(len(path)) {
					t.Fatalf("hop-count Dist(%d,%d)=%f but path has %d links", a, b, d, len(path))
				}
			}
		}
	}
}

func TestSingleRouterAS(t *testing.T) {
	cfg := topology.DefaultConfig(topology.Era1999)
	cfg.RoutersStub = 1
	top, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := New(top, DefaultConfig())
	for _, as := range top.ASList {
		if as.Class != topology.Stub {
			continue
		}
		r := as.Routers[0]
		if d, ok := g.Dist(r, r); !ok || d != 0 {
			t.Fatalf("self distance in single-router AS: %f, %v", d, ok)
		}
		if p, ok := g.Path(r, r); !ok || len(p) != 0 {
			t.Fatalf("self path in single-router AS: %v, %v", p, ok)
		}
	}
}
