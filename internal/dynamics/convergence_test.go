package dynamics

import (
	"testing"

	"pathsel/internal/bgp"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// findBlackholedPair locates an epoch with new failures and a host pair
// whose previous-epoch route crossed one of the newly failed links.
func findBlackholedPair(t *testing.T, top *topology.Topology, d *DelayedTimeline) (epoch int, src, dst topology.HostID) {
	t.Helper()
	for i := 1; i < len(d.tl.epochs); i++ {
		if d.newLinks[i] == nil {
			continue
		}
		prev := d.tl.epochs[i-1]
		for _, hs := range top.Hosts {
			for _, hd := range top.Hosts {
				if hs.ID == hd.ID {
					continue
				}
				p, err := prev.cache.PathAt(hs.ID, hd.ID, prev.Start)
				if err == nil && pathUsesLink(p, d.newLinks[i]) {
					return i, hs.ID, hd.ID
				}
			}
		}
	}
	t.Skip("no sampled failure crossed a host-pair route at this seed")
	return 0, 0, 0
}

func TestAdjacencyRestrictionLimitsFailures(t *testing.T) {
	top, tl := buildTimeline(t, func(cfg *Config) {
		cfg.FailuresPerAdjacencyPerWeek = 3 // hot enough that unrestricted sampling would hit many adjacencies
	})
	// Restrict to the first adjacency that failed in the unrestricted
	// run, and rebuild: every failure must now be on that adjacency.
	var target bgp.AdjacencyKey
	found := false
	for _, ep := range tl.Epochs() {
		if len(ep.Failed) > 0 {
			target = ep.Failed[0]
			found = true
			break
		}
	}
	if !found {
		t.Skip("no failures sampled at this seed")
	}
	g := igp.New(top, igp.DefaultConfig())
	cfg := DefaultConfig()
	cfg.DurationSec = 2 * 86400
	cfg.FailuresPerAdjacencyPerWeek = 3
	cfg.Adjacencies = []bgp.AdjacencyKey{target, target} // duplicates are deduplicated
	rtl, err := Build(top, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawFailure := false
	for _, ep := range rtl.Epochs() {
		for _, adj := range ep.Failed {
			sawFailure = true
			if adj != target {
				t.Fatalf("failure on %v, restricted to %v", adj, target)
			}
		}
	}
	if !sawFailure {
		t.Fatal("restricted timeline sampled no failures at a hot rate")
	}
}

func TestWithConvergenceDelayRejectsNegative(t *testing.T) {
	_, tl := buildTimeline(t, nil)
	if _, err := tl.WithConvergenceDelay(-1); err == nil {
		t.Fatal("expected error for a negative delay")
	}
}

func TestZeroDelayMatchesTimeline(t *testing.T) {
	top, tl := buildTimeline(t, nil)
	d, err := tl.WithConvergenceDelay(0)
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts
	for _, ep := range tl.Epochs() {
		at := ep.Start + (ep.End-ep.Start)/2
		for i := 0; i < 4; i++ {
			src, dst := hosts[i].ID, hosts[(i+3)%len(hosts)].ID
			p1, err1 := tl.PathAt(src, dst, at)
			p2, err2 := d.PathAt(src, dst, at)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch at %v: %v vs %v", at, err1, err2)
			}
			if err1 == nil && routeSignature(p1) != routeSignature(p2) {
				t.Fatalf("path mismatch at %v", at)
			}
		}
	}
}

func TestDelayBlackholesBrokenRoutes(t *testing.T) {
	top, tl := buildTimeline(t, func(cfg *Config) {
		cfg.FailuresPerAdjacencyPerWeek = 1.5
		cfg.MaxEpochs = 400
	})
	const delay = 240.0
	d, err := tl.WithConvergenceDelay(delay)
	if err != nil {
		t.Fatal(err)
	}
	i, src, dst := findBlackholedPair(t, top, d)
	ep := tl.Epochs()[i]

	// During the delay window the pair is blackholed...
	for _, off := range []float64{0, delay / 2, delay - 1} {
		at := ep.Start + netsim.Time(off)
		if at >= ep.End {
			break
		}
		if _, err := d.PathAt(src, dst, at); err == nil {
			t.Fatalf("expected blackhole %v after epoch start", netsim.Time(off))
		}
	}
	// ...and afterwards (or at any time) the plain timeline's converged
	// answer applies.
	at := ep.Start + netsim.Time(delay)
	if at < ep.End {
		p1, err1 := tl.PathAt(src, dst, at)
		p2, err2 := d.PathAt(src, dst, at)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("post-delay error mismatch: %v vs %v", err1, err2)
		}
		if err1 == nil && routeSignature(p1) != routeSignature(p2) {
			t.Fatal("post-delay path differs from the converged timeline")
		}
	}

	// A pair whose previous route avoided the failed links converges
	// immediately.
	for _, hs := range top.Hosts {
		for _, hd := range top.Hosts {
			if hs.ID == hd.ID {
				continue
			}
			p, err := tl.Epochs()[i-1].cache.PathAt(hs.ID, hd.ID, ep.Start)
			if err != nil || pathUsesLink(p, d.newLinks[i]) {
				continue
			}
			pd, errD := d.PathAt(hs.ID, hd.ID, ep.Start)
			pt, errT := tl.PathAt(hs.ID, hd.ID, ep.Start)
			if (errD == nil) != (errT == nil) {
				t.Fatalf("unaffected pair %d->%d error mismatch: %v vs %v", hs.ID, hd.ID, errD, errT)
			}
			if errD == nil && routeSignature(pd) != routeSignature(pt) {
				t.Fatalf("unaffected pair %d->%d rerouted during the delay window", hs.ID, hd.ID)
			}
			return
		}
	}
}
