// Package dynamics models routing dynamics: BGP session failures and
// repairs over simulated time, with full reconvergence of the routing
// system in every inter-failure epoch. It supports the Paxson-style
// route-dominance analysis the paper cites ("Internet paths are
// generally dominated by a single route, but some networks do experience
// significant route fluctuation") and lets experiments measure how route
// changes interact with the alternate-path phenomenon.
//
// Failures are sampled per AS adjacency as a Poisson process with
// exponentially distributed outage durations, deterministically from the
// seed. Each maximal interval with a constant failure set is an Epoch
// holding its own converged BGP table and forwarder.
package dynamics

import (
	"fmt"
	"math/rand"
	"sort"

	"pathsel/internal/bgp"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// Config controls failure sampling.
type Config struct {
	Seed int64
	// FailuresPerAdjacencyPerWeek is the expected number of session
	// failures per AS adjacency per simulated week.
	FailuresPerAdjacencyPerWeek float64
	// MeanOutageSec is the mean outage duration.
	MeanOutageSec float64
	// StartSec and DurationSec bound the timeline.
	StartSec, DurationSec float64
	// MaxEpochs bounds the number of reconvergence computations; Build
	// fails if the sampled failures would exceed it.
	MaxEpochs int
	// Adjacencies, when non-empty, restricts failure sampling to the
	// listed AS adjacencies (deduplicated; unknown adjacencies are
	// harmless no-ops). Experiments use it to inject failures onto the
	// paths a host set actually depends on instead of spreading them
	// over the whole topology. Empty means every adjacency may fail.
	Adjacencies []bgp.AdjacencyKey
}

// DefaultConfig returns a modest failure regime: most adjacencies never
// fail during a one-week window, a few fail once — consistent with the
// paper-era observation that most instability came from a minority of
// networks.
func DefaultConfig() Config {
	return Config{
		Seed:                        1,
		FailuresPerAdjacencyPerWeek: 0.05,
		MeanOutageSec:               1800,
		StartSec:                    0,
		DurationSec:                 7 * 86400,
		MaxEpochs:                   200,
	}
}

// Validate reports problems with the configuration.
func (c Config) Validate() error {
	switch {
	case c.FailuresPerAdjacencyPerWeek < 0:
		return fmt.Errorf("dynamics: negative failure rate")
	case c.MeanOutageSec <= 0:
		return fmt.Errorf("dynamics: MeanOutageSec must be positive")
	case c.DurationSec <= 0:
		return fmt.Errorf("dynamics: DurationSec must be positive")
	case c.MaxEpochs < 1:
		return fmt.Errorf("dynamics: MaxEpochs must be at least 1")
	}
	return nil
}

// Epoch is a maximal interval with a constant set of failed adjacencies
// and the routing state converged for that set.
type Epoch struct {
	Start, End netsim.Time
	// Failed lists the adjacencies down during the epoch.
	Failed []bgp.AdjacencyKey
	// Fwd forwards packets with the epoch's converged routes, excluding
	// all links of failed adjacencies.
	Fwd *forward.Forwarder
	// cache memoizes host-pair paths; epochs with the same failure set
	// share one cache.
	cache *forward.Cache
}

// Timeline is a sequence of contiguous epochs covering the window.
type Timeline struct {
	top    *topology.Topology
	epochs []*Epoch
}

// outage is one sampled failure interval of one adjacency.
type outage struct {
	adj        bgp.AdjacencyKey
	start, end float64
}

// adjacencies lists every undirected AS adjacency in deterministic order.
func adjacencies(top *topology.Topology) []bgp.AdjacencyKey {
	set := map[bgp.AdjacencyKey]bool{}
	for _, as := range top.ASList {
		for _, n := range top.NeighborASes(as.ASN) {
			set[bgp.MakeAdjacencyKey(as.ASN, n)] = true
		}
	}
	out := make([]bgp.AdjacencyKey, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Build samples the failure schedule and converges routing for every
// epoch.
func Build(top *topology.Topology, g *igp.IGP, cfg Config) (*Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	end := cfg.StartSec + cfg.DurationSec
	ratePerSec := cfg.FailuresPerAdjacencyPerWeek / (7 * 86400)

	adjList := adjacencies(top)
	if len(cfg.Adjacencies) > 0 {
		set := map[bgp.AdjacencyKey]bool{}
		for _, adj := range cfg.Adjacencies {
			set[adj] = true
		}
		adjList = adjList[:0]
		for adj := range set {
			adjList = append(adjList, adj)
		}
		sort.Slice(adjList, func(i, j int) bool {
			if adjList[i][0] != adjList[j][0] {
				return adjList[i][0] < adjList[j][0]
			}
			return adjList[i][1] < adjList[j][1]
		})
	}

	var outages []outage
	for _, adj := range adjList {
		t := cfg.StartSec
		for {
			if ratePerSec <= 0 {
				break
			}
			t += rng.ExpFloat64() / ratePerSec
			if t >= end {
				break
			}
			o := outage{adj: adj, start: t, end: t + rng.ExpFloat64()*cfg.MeanOutageSec}
			if o.end > end {
				o.end = end
			}
			outages = append(outages, o)
			t = o.end
		}
	}

	// Breakpoints where the failure set changes.
	breaks := map[float64]bool{cfg.StartSec: true, end: true}
	for _, o := range outages {
		breaks[o.start] = true
		breaks[o.end] = true
	}
	points := make([]float64, 0, len(breaks))
	for p := range breaks {
		points = append(points, p)
	}
	sort.Float64s(points)
	if len(points)-1 > cfg.MaxEpochs {
		return nil, fmt.Errorf("dynamics: %d epochs exceed MaxEpochs %d; lower the failure rate",
			len(points)-1, cfg.MaxEpochs)
	}

	tl := &Timeline{top: top}
	// Cache converged state per failure-set signature: failures are
	// sparse, so the all-up state recurs between outages.
	type state struct {
		fwd   *forward.Forwarder
		cache *forward.Cache
	}
	cache := map[string]state{}
	for i := 0; i+1 < len(points); i++ {
		lo, hi := points[i], points[i+1]
		mid := (lo + hi) / 2
		failedSet := map[bgp.AdjacencyKey]bool{}
		var failed []bgp.AdjacencyKey
		for _, o := range outages {
			if o.start <= mid && mid < o.end && !failedSet[o.adj] {
				failedSet[o.adj] = true
				failed = append(failed, o.adj)
			}
		}
		sort.Slice(failed, func(a, b int) bool {
			if failed[a][0] != failed[b][0] {
				return failed[a][0] < failed[b][0]
			}
			return failed[a][1] < failed[b][1]
		})
		sig := fmt.Sprint(failed)
		st, ok := cache[sig]
		if !ok {
			table, err := bgp.ComputeExcluding(top, failedSet)
			if err != nil {
				return nil, fmt.Errorf("dynamics: reconvergence with %d failures: %w", len(failed), err)
			}
			excludedLinks := map[topology.LinkID]bool{}
			for _, adj := range failed {
				for _, lid := range top.InterASLinks(adj[0], adj[1]) {
					excludedLinks[lid] = true
				}
				for _, lid := range top.InterASLinks(adj[1], adj[0]) {
					excludedLinks[lid] = true
				}
			}
			fwd := forward.NewWithExclusions(top, g, table, excludedLinks)
			st = state{fwd: fwd, cache: forward.NewCache(fwd)}
			cache[sig] = st
		}
		tl.epochs = append(tl.epochs, &Epoch{
			Start:  netsim.Time(lo),
			End:    netsim.Time(hi),
			Failed: failed,
			Fwd:    st.fwd,
			cache:  st.cache,
		})
	}
	return tl, nil
}

// Epochs returns the timeline's epochs in order.
func (tl *Timeline) Epochs() []*Epoch { return tl.epochs }

// EpochAt returns the epoch containing t, or nil if t is outside the
// window.
func (tl *Timeline) EpochAt(t netsim.Time) *Epoch {
	i := sort.Search(len(tl.epochs), func(i int) bool { return tl.epochs[i].End > t })
	if i == len(tl.epochs) || tl.epochs[i].Start > t {
		return nil
	}
	return tl.epochs[i]
}

// PathAt returns the forwarding path between two hosts at time t, under
// the routes converged for that instant's failure set.
func (tl *Timeline) PathAt(src, dst topology.HostID, t netsim.Time) (forward.Path, error) {
	ep := tl.EpochAt(t)
	if ep == nil {
		return forward.Path{}, fmt.Errorf("dynamics: time %v outside the timeline", t)
	}
	return ep.cache.PathAt(src, dst, t)
}

// RouteStats summarizes the routes one host pair experienced across the
// timeline, Paxson-style.
type RouteStats struct {
	// Samples is the number of time samples taken.
	Samples int
	// DistinctRoutes counts the different router-level paths seen
	// (unreachability counts as its own "route" when it occurs).
	DistinctRoutes int
	// DominantFraction is the share of samples on the most common route.
	DominantFraction float64
	// UnreachableFraction is the share of samples with no route.
	UnreachableFraction float64
}

// RouteDominance samples the pair's forwarding path at regular intervals
// across the timeline and reports route-prevalence statistics.
func (tl *Timeline) RouteDominance(src, dst topology.HostID, samples int) (RouteStats, error) {
	if len(tl.epochs) == 0 {
		return RouteStats{}, fmt.Errorf("dynamics: empty timeline")
	}
	if samples < 1 {
		return RouteStats{}, fmt.Errorf("dynamics: need at least 1 sample")
	}
	start := tl.epochs[0].Start
	end := tl.epochs[len(tl.epochs)-1].End
	counts := map[string]int{}
	unreachable := 0
	for i := 0; i < samples; i++ {
		t := start + netsim.Time(float64(end-start)*(float64(i)+0.5)/float64(samples))
		p, err := tl.PathAt(src, dst, t)
		if err != nil {
			unreachable++
			counts["unreachable"]++
			continue
		}
		counts[routeSignature(p)]++
	}
	st := RouteStats{Samples: samples, DistinctRoutes: len(counts)}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	st.DominantFraction = float64(max) / float64(samples)
	st.UnreachableFraction = float64(unreachable) / float64(samples)
	return st, nil
}

func routeSignature(p forward.Path) string {
	return fmt.Sprint(p.Routers)
}
