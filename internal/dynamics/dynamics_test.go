package dynamics

import (
	"testing"

	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

func smallTopology(t *testing.T) (*topology.Topology, *igp.IGP) {
	t.Helper()
	cfg := topology.DefaultConfig(topology.Era1999)
	cfg.NumTier1 = 4
	cfg.NumTransit = 8
	cfg.NumStub = 30
	cfg.NumHosts = 8
	top, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return top, igp.New(top, igp.DefaultConfig())
}

func buildTimeline(t *testing.T, mutate func(*Config)) (*topology.Topology, *Timeline) {
	t.Helper()
	top, g := smallTopology(t)
	cfg := DefaultConfig()
	cfg.DurationSec = 2 * 86400
	cfg.FailuresPerAdjacencyPerWeek = 0.3 // enough events in two days
	if mutate != nil {
		mutate(&cfg)
	}
	tl, err := Build(top, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return top, tl
}

func TestTimelineCoversWindowContiguously(t *testing.T) {
	_, tl := buildTimeline(t, nil)
	eps := tl.Epochs()
	if len(eps) == 0 {
		t.Fatal("no epochs")
	}
	if eps[0].Start != 0 {
		t.Errorf("first epoch starts at %v", eps[0].Start)
	}
	if eps[len(eps)-1].End != netsim.Time(2*86400) {
		t.Errorf("last epoch ends at %v", eps[len(eps)-1].End)
	}
	for i := 1; i < len(eps); i++ {
		if eps[i].Start != eps[i-1].End {
			t.Fatalf("gap between epochs %d and %d", i-1, i)
		}
	}
}

func TestFailuresOccur(t *testing.T) {
	_, tl := buildTimeline(t, nil)
	withFailures := 0
	for _, ep := range tl.Epochs() {
		if len(ep.Failed) > 0 {
			withFailures++
		}
	}
	if withFailures == 0 {
		t.Error("no epoch has failures; raise the rate or check sampling")
	}
}

func TestEpochAt(t *testing.T) {
	_, tl := buildTimeline(t, nil)
	if ep := tl.EpochAt(100); ep == nil || ep.Start > 100 || ep.End <= 100 {
		t.Error("EpochAt(100) wrong")
	}
	if tl.EpochAt(-5) != nil {
		t.Error("time before window should have no epoch")
	}
	if tl.EpochAt(netsim.Time(3*86400)) != nil {
		t.Error("time after window should have no epoch")
	}
}

func TestPathAtAndRouteChanges(t *testing.T) {
	top, tl := buildTimeline(t, nil)
	src, dst := top.Hosts[0].ID, top.Hosts[1].ID
	if _, err := tl.PathAt(src, dst, 50); err != nil {
		t.Fatalf("PathAt: %v", err)
	}
	if _, err := tl.PathAt(src, dst, netsim.Time(5*86400)); err == nil {
		t.Error("PathAt outside window should error")
	}
}

// TestRouteDominance reproduces Paxson's qualitative finding on the
// synthetic Internet: most pairs are dominated by a single route.
func TestRouteDominance(t *testing.T) {
	top, tl := buildTimeline(t, nil)
	dominated := 0
	pairs := 0
	for i := 0; i < len(top.Hosts); i++ {
		for j := i + 1; j < len(top.Hosts); j++ {
			st, err := tl.RouteDominance(top.Hosts[i].ID, top.Hosts[j].ID, 60)
			if err != nil {
				t.Fatal(err)
			}
			if st.Samples != 60 || st.DistinctRoutes < 1 {
				t.Fatalf("bad stats %+v", st)
			}
			if st.DominantFraction <= 0 || st.DominantFraction > 1 {
				t.Fatalf("dominant fraction %f", st.DominantFraction)
			}
			pairs++
			if st.DominantFraction >= 0.8 {
				dominated++
			}
		}
	}
	if frac := float64(dominated) / float64(pairs); frac < 0.5 {
		t.Errorf("only %.0f%% of pairs dominated by a single route; expected most", 100*frac)
	}
}

func TestNoFailuresSingleEpoch(t *testing.T) {
	top, tl := buildTimeline(t, func(c *Config) { c.FailuresPerAdjacencyPerWeek = 0 })
	if len(tl.Epochs()) != 1 {
		t.Fatalf("expected a single epoch, got %d", len(tl.Epochs()))
	}
	st, err := tl.RouteDominance(top.Hosts[0].ID, top.Hosts[2].ID, 20)
	if err != nil {
		t.Fatal(err)
	}
	if st.DistinctRoutes != 1 || st.DominantFraction != 1 {
		t.Errorf("static network should have one dominant route: %+v", st)
	}
}

func TestDeterministicTimeline(t *testing.T) {
	_, tl1 := buildTimeline(t, nil)
	_, tl2 := buildTimeline(t, nil)
	e1, e2 := tl1.Epochs(), tl2.Epochs()
	if len(e1) != len(e2) {
		t.Fatalf("epoch counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].Start != e2[i].Start || e1[i].End != e2[i].End || len(e1[i].Failed) != len(e2[i].Failed) {
			t.Fatalf("epoch %d differs", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	top, g := smallTopology(t)
	bad := []func(*Config){
		func(c *Config) { c.FailuresPerAdjacencyPerWeek = -1 },
		func(c *Config) { c.MeanOutageSec = 0 },
		func(c *Config) { c.DurationSec = 0 },
		func(c *Config) { c.MaxEpochs = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Build(top, g, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Exceeding MaxEpochs is an error, not a silent truncation.
	cfg := DefaultConfig()
	cfg.FailuresPerAdjacencyPerWeek = 50
	cfg.MaxEpochs = 3
	if _, err := Build(top, g, cfg); err == nil {
		t.Error("epoch explosion should be rejected")
	}
}

func TestFailedEpochAvoidsFailedAdjacency(t *testing.T) {
	top, tl := buildTimeline(t, func(c *Config) { c.FailuresPerAdjacencyPerWeek = 0.5 })
	checked := 0
	for _, ep := range tl.Epochs() {
		if len(ep.Failed) == 0 {
			continue
		}
		failed := map[[2]topology.ASN]bool{}
		for _, adj := range ep.Failed {
			failed[[2]topology.ASN{adj[0], adj[1]}] = true
			failed[[2]topology.ASN{adj[1], adj[0]}] = true
		}
		mid := ep.Start + (ep.End-ep.Start)/2
		for i := 0; i < 4; i++ {
			for j := 4; j < len(top.Hosts); j++ {
				p, err := tl.PathAt(top.Hosts[i].ID, top.Hosts[j].ID, mid)
				if err != nil {
					continue // pair may be disconnected during the outage
				}
				as := p.ASPath(top)
				for k := 0; k+1 < len(as); k++ {
					if failed[[2]topology.ASN{as[k], as[k+1]}] {
						t.Fatalf("path uses failed adjacency %d-%d", as[k], as[k+1])
					}
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Skip("no reachable pairs during failure epochs")
	}
}
