package dynamics

import (
	"fmt"

	"pathsel/internal/bgp"
	"pathsel/internal/forward"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// DelayedTimeline wraps a Timeline with a BGP convergence delay: when an
// epoch begins because sessions failed, pairs whose previous-epoch route
// crossed a newly failed adjacency see no route at all for the first
// DelaySec of the epoch — the withdrawal has not propagated and packets
// are still being blackholed, as in Labovitz's delayed-convergence
// measurements. Once DelaySec elapses the epoch's converged routes
// apply. Restorations take effect immediately (a recovered route only
// gets better), and pairs whose old route did not cross a failed
// adjacency are unaffected.
//
// Like Timeline, a DelayedTimeline is not safe for concurrent use.
type DelayedTimeline struct {
	tl       *Timeline
	DelaySec float64
	// newLinks[i] holds the links of adjacencies that failed at the
	// start of epoch i (present in epoch i's failure set but not epoch
	// i-1's).
	newLinks []map[topology.LinkID]bool
}

// WithConvergenceDelay derives a DelayedTimeline from tl. A delay of 0
// behaves exactly like the underlying timeline.
func (tl *Timeline) WithConvergenceDelay(delaySec float64) (*DelayedTimeline, error) {
	if delaySec < 0 {
		return nil, fmt.Errorf("dynamics: negative convergence delay %f", delaySec)
	}
	d := &DelayedTimeline{tl: tl, DelaySec: delaySec, newLinks: make([]map[topology.LinkID]bool, len(tl.epochs))}
	for i, ep := range tl.epochs {
		var prev []bgp.AdjacencyKey
		if i > 0 {
			prev = tl.epochs[i-1].Failed
		}
		prevSet := map[bgp.AdjacencyKey]bool{}
		for _, adj := range prev {
			prevSet[adj] = true
		}
		links := map[topology.LinkID]bool{}
		for _, adj := range ep.Failed {
			if prevSet[adj] {
				continue
			}
			for _, lid := range tl.top.InterASLinks(adj[0], adj[1]) {
				links[lid] = true
			}
			for _, lid := range tl.top.InterASLinks(adj[1], adj[0]) {
				links[lid] = true
			}
		}
		if len(links) > 0 {
			d.newLinks[i] = links
		}
	}
	return d, nil
}

// Timeline returns the underlying epoch timeline.
func (d *DelayedTimeline) Timeline() *Timeline { return d.tl }

// epochIndex returns the index of the epoch containing t, or -1.
func (d *DelayedTimeline) epochIndex(t netsim.Time) int {
	ep := d.tl.EpochAt(t)
	if ep == nil {
		return -1
	}
	// Epochs are contiguous and sorted; locate by start time.
	lo, hi := 0, len(d.tl.epochs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.tl.epochs[mid].End > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// PathAt returns the forwarding path between two hosts at time t,
// holding back reconvergence for routes broken by the current epoch's
// new failures.
func (d *DelayedTimeline) PathAt(src, dst topology.HostID, t netsim.Time) (forward.Path, error) {
	i := d.epochIndex(t)
	if i < 0 {
		return forward.Path{}, fmt.Errorf("dynamics: time %v outside the timeline", t)
	}
	ep := d.tl.epochs[i]
	if d.DelaySec > 0 && i > 0 && d.newLinks[i] != nil && float64(t-ep.Start) < d.DelaySec {
		prevPath, err := d.tl.epochs[i-1].cache.PathAt(src, dst, ep.Start)
		// A pair that was already unreachable cannot be blackholed
		// further; only routes that crossed a newly failed adjacency
		// stall.
		if err == nil && pathUsesLink(prevPath, d.newLinks[i]) {
			return forward.Path{}, fmt.Errorf("dynamics: %d->%d blackholed during reconvergence at %v", src, dst, t)
		}
	}
	return ep.cache.PathAt(src, dst, t)
}

// pathUsesLink reports whether the path crosses any of the links.
func pathUsesLink(p forward.Path, links map[topology.LinkID]bool) bool {
	for _, lid := range p.Links {
		if links[lid] {
			return true
		}
	}
	return false
}
