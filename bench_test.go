// Package bench contains the benchmark harness that regenerates every
// table and figure of the paper's evaluation (run with `go test -bench .`),
// plus ablation benchmarks for the design choices called out in
// DESIGN.md. Each BenchmarkTableN / BenchmarkFigureN times the complete
// analysis behind that exhibit on a shared suite of datasets; the suite
// itself (topology generation, route convergence, and all eight
// measurement campaigns) is timed once in BenchmarkSuiteBuild.
package bench

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pathsel/internal/core"
	"pathsel/internal/dataset"
	"pathsel/internal/experiments"
	"pathsel/internal/forward"
	"pathsel/internal/measure"
	"pathsel/internal/netsim"
	"pathsel/internal/packetnet"
	"pathsel/internal/snapshot"
	"pathsel/internal/stats"
	"pathsel/internal/tcpmodel"
	"pathsel/internal/topology"
)

// presetSuites caches one built suite per campaign scale so the
// query-side benchmarks don't pay the build again per sub-benchmark.
var presetSuites = map[experiments.Preset]*struct {
	once sync.Once
	s    *experiments.Suite
	err  error
}{
	experiments.Quick: {},
	experiments.Full:  {},
	experiments.Scale: {},
}

func benchSuitePreset(b *testing.B, p experiments.Preset) *experiments.Suite {
	b.Helper()
	c := presetSuites[p]
	c.once.Do(func() {
		c.s, c.err = experiments.Build(experiments.Config{Seed: 1, Preset: p})
	})
	if c.err != nil {
		b.Fatalf("Build(%v): %v", p, c.err)
	}
	return c.s
}

func benchSuite(b *testing.B) *experiments.Suite {
	return benchSuitePreset(b, experiments.Quick)
}

// BenchmarkSuiteBuild times the full pipeline that feeds every other
// benchmark: topology + IGP + BGP + congestion model + all campaigns.
func BenchmarkSuiteBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Build(experiments.Config{Seed: 1, Preset: experiments.Quick})
		if err != nil {
			b.Fatal(err)
		}
		if len(s.UW3.Paths) == 0 {
			b.Fatal("empty UW3")
		}
	}
}

// BenchmarkSuiteBuildPreset times the same pipeline at every campaign
// scale — quick, full and the 10k-AS / 100k-host scale preset — and
// reports the substrate size next to the timing, so the committed
// baseline (BENCH_6.json) tracks the build curve from laptop to planet
// scale. BenchmarkSuiteBuild above stays the historical quick-preset
// reference point.
func BenchmarkSuiteBuildPreset(b *testing.B) {
	for _, preset := range []experiments.Preset{experiments.Quick, experiments.Full, experiments.Scale} {
		b.Run(preset.String(), func(b *testing.B) {
			var st topology.Stats
			for i := 0; i < b.N; i++ {
				s, err := experiments.Build(experiments.Config{Seed: 1, Preset: preset})
				if err != nil {
					b.Fatal(err)
				}
				if len(s.UW3.Paths) == 0 {
					b.Fatal("empty UW3")
				}
				st = s.TopoUW.Stats()
			}
			b.ReportMetric(float64(st.ASes), "ases")
			b.ReportMetric(float64(st.Hosts), "hosts")
			b.ReportMetric(float64(st.Links), "links")
		})
	}
}

// BenchmarkBestAlternatesPreset times the headline alternate-path query
// (unrestricted RTT search over UW3) at every campaign scale, reporting
// measured-pair throughput. This is the query half of the build/query
// curve in BENCH_6.json.
func BenchmarkBestAlternatesPreset(b *testing.B) {
	for _, preset := range []experiments.Preset{experiments.Quick, experiments.Full, experiments.Scale} {
		b.Run(preset.String(), func(b *testing.B) {
			s := benchSuitePreset(b, preset)
			a := core.NewAnalyzer(s.UW3)
			b.ResetTimer()
			var pairs int
			for i := 0; i < b.N; i++ {
				results, err := a.BestAlternates(core.MetricRTT, 0)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) == 0 {
					b.Fatal("no results")
				}
				pairs = len(results)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// BenchmarkQueryK times the unified Query API at increasing path-set
// sizes on the quick-preset UW3 dataset. k=1 routes through the legacy
// single-alternate engine (the byte-identical fast path); k>1 pays the
// Yen spur searches, so the curve shows the marginal cost per extra
// alternate.
func BenchmarkQueryK(b *testing.B) {
	s := benchSuite(b)
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			a := core.NewAnalyzer(s.UW3)
			b.ResetTimer()
			var pairs int
			for i := 0; i < b.N; i++ {
				rs, err := a.Query(core.QuerySpec{Metric: core.MetricRTT, K: k})
				if err != nil {
					b.Fatal(err)
				}
				if len(rs.Pairs) == 0 {
					b.Fatal("no results")
				}
				pairs = len(rs.Pairs)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// BenchmarkMultipathExhibit times the end-to-end multipath analysis:
// one k-set query plus disjointness scoring and strategy selection.
func BenchmarkMultipathExhibit(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Multipath(s)
		if err != nil {
			b.Fatal(err)
		}
		if res.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkPacketTransfer times one 30-second bulk TCP transfer on the
// packet-level data plane: event loop, link scheduler, and Reno
// endpoints included.
func BenchmarkPacketTransfer(b *testing.B) {
	s := benchSuite(b)
	fwd, ns := s.D2Forwarding()
	src := s.TopoD2.Hosts[0].ID
	dst := s.TopoD2.Hosts[1].ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := packetnet.New(s.TopoD2, ns, forward.NewCache(fwd), packetnet.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		st, err := n.Transfer(src, dst, 0, 30)
		if err != nil {
			b.Fatal(err)
		}
		if st.Delivered == 0 {
			b.Fatal("no bytes delivered")
		}
	}
}

// BenchmarkPacketValidationExhibit times the full packet-level
// validation: a packet network, a rounds simulation, and a Mathis
// evaluation per sampled N2 pair.
func BenchmarkPacketValidationExhibit(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ValidatePacketLevel(s)
		if err != nil {
			b.Fatal(err)
		}
		if res.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(s)
		if len(rows) != 8 {
			b.Fatal("bad row count")
		}
	}
}

func benchSeries(b *testing.B, fn func(*experiments.Suite) ([]experiments.Series, error)) {
	b.Helper()
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := fn(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) == 0 {
			b.Fatal("no series")
		}
	}
}

func BenchmarkFigure1(b *testing.B)  { benchSeries(b, experiments.Figure1) }
func BenchmarkFigure2(b *testing.B)  { benchSeries(b, experiments.Figure2) }
func BenchmarkFigure3(b *testing.B)  { benchSeries(b, experiments.Figure3) }
func BenchmarkFigure4(b *testing.B)  { benchSeries(b, experiments.Figure4) }
func BenchmarkFigure5(b *testing.B)  { benchSeries(b, experiments.Figure5) }
func BenchmarkFigure6(b *testing.B)  { benchSeries(b, experiments.Figure6) }
func BenchmarkFigure9(b *testing.B)  { benchSeries(b, experiments.Figure9) }
func BenchmarkFigure10(b *testing.B) { benchSeries(b, experiments.Figure10) }
func BenchmarkFigure11(b *testing.B) { benchSeries(b, experiments.Figure11) }
func BenchmarkFigure15(b *testing.B) { benchSeries(b, experiments.Figure15) }

func BenchmarkFigure7(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure7(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure8(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("bad row count")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("bad row count")
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Removed) == 0 {
			b.Fatal("nothing removed")
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := experiments.Figure13(s)
		if err != nil {
			b.Fatal(err)
		}
		if sr.CDF.N() == 0 {
			b.Fatal("empty CDF")
		}
	}
}

func BenchmarkFigure14(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts, err := experiments.Figure14(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(counts) == 0 {
			b.Fatal("no AS counts")
		}
	}
}

func BenchmarkFigure16(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decs, err := experiments.Figure16(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(decs) == 0 {
			b.Fatal("no decompositions")
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationLossComposition compares the two ways of composing
// loss along a synthetic path: maximum-of-hops (optimistic) versus
// independence (pessimistic).
func BenchmarkAblationLossComposition(b *testing.B) {
	s := benchSuite(b)
	model := tcpmodel.Default()
	for _, mode := range []core.BandwidthMode{core.Optimistic, core.Pessimistic} {
		b.Run(mode.String(), func(b *testing.B) {
			a := core.NewAnalyzer(s.N2)
			for i := 0; i < b.N; i++ {
				if _, err := a.BestBandwidthAlternates(model, mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHopLimit compares alternate-path search with one
// intermediate host (the paper's bandwidth restriction), a small bound,
// and unrestricted Dijkstra.
func BenchmarkAblationHopLimit(b *testing.B) {
	s := benchSuite(b)
	for _, bc := range []struct {
		name   string
		maxVia int
	}{{"one-hop", 1}, {"two-hop", 2}, {"unrestricted", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			a := core.NewAnalyzer(s.UW3)
			for i := 0; i < b.N; i++ {
				results, err := a.BestAlternates(core.MetricRTT, bc.maxVia)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

// BenchmarkAblationMedian compares the cheap mean-based comparison with
// the median-by-convolution robustness check of Section 6.1.
func BenchmarkAblationMedian(b *testing.B) {
	s := benchSuite(b)
	b.Run("mean", func(b *testing.B) {
		a := core.NewAnalyzer(s.D2NA)
		for i := 0; i < b.N; i++ {
			if _, err := a.BestAlternates(core.MetricRTT, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("median-convolution", func(b *testing.B) {
		a := core.NewAnalyzer(s.D2NA)
		for i := 0; i < b.N; i++ {
			if _, err := a.BestMedianAlternates(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPropagationEstimator compares the paper's
// tenth-percentile propagation estimate against the raw minimum.
func BenchmarkAblationPropagationEstimator(b *testing.B) {
	s := benchSuite(b)
	keys := s.UW3.PairKeys()
	for _, bc := range []struct {
		name string
		q    float64
	}{{"minimum", 0}, {"p10", core.PropagationQuantile}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got := 0
				for _, k := range keys {
					if _, ok := s.UW3.PropagationDelay(k, bc.q); ok {
						got++
					}
				}
				if got == 0 {
					b.Fatal("no estimates")
				}
			}
		})
	}
}

// BenchmarkAblationScheduler compares the two probe schedulers the paper
// used (UW1's per-server uniform vs UW3's exponential pairs) on a short
// campaign over the already-built measurement plane.
func BenchmarkAblationScheduler(b *testing.B) {
	s := benchSuite(b)
	top, prober := s.UWPlane()
	var hosts []topology.HostID
	for _, h := range s.UW3.Hosts {
		hosts = append(hosts, h)
	}
	for _, bc := range []struct {
		name  string
		sched measure.Scheduler
	}{{"per-server-uniform", measure.PerServerUniform}, {"exponential-pairs", measure.ExponentialPairs}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds, err := measure.Run(top, prober, measure.Spec{
					Name: "ablation", Hosts: hosts,
					Method: measure.MethodTraceroute, Scheduler: bc.sched,
					MeanIntervalSec: 600, DurationSec: 86400, Seed: 11,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(ds.Paths) == 0 {
					b.Fatal("empty campaign")
				}
			}
		})
	}
}

// --- Micro-benchmarks for the hot paths under everything above ---

func BenchmarkTopologyGenerate(b *testing.B) {
	cfg := topology.DefaultConfig(topology.Era1999)
	for i := 0; i < b.N; i++ {
		if _, err := topology.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbeTraceroute(b *testing.B) {
	s := benchSuite(b)
	_, prober := s.UWPlane()
	src, dst := s.UW3.Hosts[0], s.UW3.Hosts[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prober.Traceroute(src, dst, netsim.Time(i%86400)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatasetAggregation(b *testing.B) {
	s := benchSuite(b)
	keys := s.UW3.PairKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc stats.Accum
		for _, k := range keys {
			if sum, ok := s.UW3.MeanRTT(k); ok {
				acc.Add(sum.Mean)
			}
		}
		if acc.N() == 0 {
			b.Fatal("no summaries")
		}
	}
}

func BenchmarkDatasetSaveLoad(b *testing.B) {
	s := benchSuite(b)
	dir := b.TempDir()
	path := dir + "/uw4b.gob.gz"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.UW4B.Save(path); err != nil {
			b.Fatal(err)
		}
		if _, err := dataset.Load(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProberEcho(b *testing.B) {
	s := benchSuite(b)
	_, prober := s.UWPlane()
	src, dst := s.UW3.Hosts[2], s.UW3.Hosts[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prober.Ping(src, dst, netsim.Time(i%86400)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension experiments (validation the paper could not run) ---

// BenchmarkValidationConservativity times the source-routing validation
// of the paper's conservativity claim (see EXPERIMENTS.md, Extensions).
func BenchmarkValidationConservativity(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ValidateConservativity(s)
		if err != nil {
			b.Fatal(err)
		}
		if res.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkAblationEgress times the hot-potato vs cold-potato routing
// comparison (two full mini-campaigns per iteration).
func BenchmarkAblationEgress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblateEgress(experiments.Config{Seed: 1, Preset: experiments.Quick})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 2 {
			b.Fatal("bad result count")
		}
	}
}

// BenchmarkTriangulation times the IDMaps-style host-distance
// triangulation over UW3.
func BenchmarkTriangulation(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Triangulation(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkRouteDynamics times the failure-timeline construction and the
// Paxson-style route-dominance census over the UW topology.
func BenchmarkRouteDynamics(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := experiments.RouteDynamics(s, 1)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkPathInflation times the optimal-routing comparison: global
// router-level Dijkstra bounds versus default and alternate paths.
func BenchmarkPathInflation(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sum, err := experiments.PathInflation(s)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkTCPModelValidation times the Mathis-versus-simulated-Reno
// comparison over the N2 dataset.
func BenchmarkTCPModelValidation(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ValidateTCPModel(s, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkCauseAblation times the six-variant mechanism decomposition.
func BenchmarkCauseAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CauseAblation(experiments.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 6 {
			b.Fatal("bad variant count")
		}
	}
}

// BenchmarkSeedSensitivity times the cross-seed robustness check.
func BenchmarkSeedSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fracs, err := experiments.SeedSensitivity(1, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(fracs) != 3 {
			b.Fatal("bad seed count")
		}
	}
}

// BenchmarkOverlayExhibit times the online overlay controller replayed
// against a failing, reconverging network at three probing budgets.
func BenchmarkOverlayExhibit(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Overlay(s, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Budgets) != 3 {
			b.Fatal("bad budget count")
		}
	}
}

// --- Snapshot codec and serve warm start ---

// BenchmarkSnapshotEncode times serializing a built suite's campaign
// datasets to the canonical snapshot format, reporting the payload
// size.
func BenchmarkSnapshotEncode(b *testing.B) {
	for _, preset := range []experiments.Preset{experiments.Quick, experiments.Full} {
		b.Run(preset.String(), func(b *testing.B) {
			s := benchSuitePreset(b, preset)
			b.ResetTimer()
			var size int
			for i := 0; i < b.N; i++ {
				buf, err := snapshot.Encode(s)
				if err != nil {
					b.Fatal(err)
				}
				size = len(buf)
			}
			b.ReportMetric(float64(size), "bytes")
		})
	}
}

// BenchmarkSnapshotDecode times the codec half of a warm start:
// checksum verification and dataset reconstruction, without the
// substrate regeneration that Restore adds on top.
func BenchmarkSnapshotDecode(b *testing.B) {
	for _, preset := range []experiments.Preset{experiments.Quick, experiments.Full} {
		b.Run(preset.String(), func(b *testing.B) {
			data, err := snapshot.Encode(benchSuitePreset(b, preset))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, ds, err := snapshot.Decode(data)
				if err != nil {
					b.Fatal(err)
				}
				if len(ds) != len(experiments.PrimaryDatasetNames()) {
					b.Fatal("missing datasets")
				}
			}
		})
	}
}

// BenchmarkServeWarmStart times the complete snapshot warm path a serve
// worker takes on a cache miss with a snapshot present: decode the
// campaign datasets and regenerate the measurement substrate. Compare
// against BenchmarkSuiteBuildPreset at the same preset — the cold
// rebuild this path replaces — for the warm/cold ratio.
func BenchmarkServeWarmStart(b *testing.B) {
	for _, preset := range []experiments.Preset{experiments.Quick, experiments.Full} {
		b.Run(preset.String(), func(b *testing.B) {
			data, err := snapshot.Encode(benchSuitePreset(b, preset))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := snapshot.Restore(context.Background(), data, 0)
				if err != nil {
					b.Fatal(err)
				}
				if len(s.UW3.Paths) == 0 {
					b.Fatal("empty UW3")
				}
			}
		})
	}
}
