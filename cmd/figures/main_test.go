package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathsel/internal/experiments"
	"pathsel/internal/snapshot"
)

func TestRunQuickWritesAllFigureData(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full quick suite and runs every analysis")
	}
	dir := t.TempDir()
	snapDir := t.TempDir()
	cfg := experiments.Config{Seed: 1, Preset: experiments.Quick}
	if err := run(cfg, dir, snapDir); err != nil {
		t.Fatal(err)
	}
	// -snapshot-dir leaves a decodable warm-start snapshot behind.
	if _, err := os.Stat(filepath.Join(snapDir, snapshot.FileName(cfg))); err != nil {
		t.Errorf("snapshot not written: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name()] = true
	}
	// Every figure must have dumped at least one data file.
	for _, fig := range []string{
		"figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
		"figure7", "figure8", "figure9", "figure10", "figure11",
		"figure12", "figure13", "figure14", "figure15", "figure16",
	} {
		found := false
		for n := range names {
			if strings.HasPrefix(n, fig+".") || strings.HasPrefix(n, fig+"-") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no data file for %s (have %v)", fig, names)
		}
	}
	// The overlay exhibit dumps a summary plus reaction and RTT CDFs.
	for _, want := range []string{
		"overlay-summary.dat",
		"overlay-reaction-b0-5.dat", "overlay-reaction-b2.dat", "overlay-reaction-b8.dat",
		"overlay-pair-rtt-overlay.dat", "overlay-pair-rtt-default.dat", "overlay-pair-rtt-optimal.dat",
	} {
		if !names[want] {
			t.Errorf("missing overlay data file %s (have %v)", want, names)
		}
	}
	if b, err := os.ReadFile(filepath.Join(dir, "overlay-summary.dat")); err != nil {
		t.Error(err)
	} else if lines := strings.Split(strings.TrimSpace(string(b)), "\n"); len(lines) != 4 {
		t.Errorf("overlay-summary.dat has %d lines, want header + 3 budgets", len(lines))
	}

	// The multipath exhibit dumps the k-curve and the disjointness CDF.
	for _, want := range []string{"multipath-kcurve.dat", "multipath-disjointness.dat"} {
		if !names[want] {
			t.Errorf("missing multipath data file %s (have %v)", want, names)
		}
	}
	if b, err := os.ReadFile(filepath.Join(dir, "multipath-kcurve.dat")); err != nil {
		t.Error(err)
	} else if lines := strings.Split(strings.TrimSpace(string(b)), "\n"); len(lines) != experiments.MultipathK+1 {
		t.Errorf("multipath-kcurve.dat has %d lines, want header + %d", len(lines), experiments.MultipathK)
	}

	// Data files are tab-separated numbers.
	b, err := os.ReadFile(filepath.Join(dir, "figure14.dat"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) < 5 {
		t.Errorf("figure14.dat too short: %d lines", len(lines))
	}
	for _, ln := range lines {
		if len(strings.Split(ln, "\t")) != 3 {
			t.Errorf("figure14.dat line %q not 3 columns", ln)
		}
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"UW3":               "uw3",
		"N2 pessimistic":    "n2-pessimistic",
		"all UW3 hosts":     "all-uw3-hosts",
		"without 'top ten'": "without--top-ten",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
