// Command figures regenerates every table and figure of the paper's
// evaluation on the synthetic Internet: it builds the eight datasets of
// Table 1 and runs the alternate-path analysis behind Figures 1-16 and
// Tables 2-3, printing a text report and optionally dumping each CDF as
// tab-separated data for plotting.
//
// Usage:
//
//	figures [-preset quick|full|scale] [-seed N] [-workers N] [-out DIR]
//	        [-snapshot-dir DIR]
//
// With -snapshot-dir the built suite is also persisted as a binary
// snapshot (internal/snapshot), so a serve fleet started with the same
// -snapshot-dir warm-starts from this run's datasets instead of
// rebuilding them.
//
// The scale preset targets the substrate rather than the full exhibit
// catalogue: it prints the topology census, Table 1, the headline CDF
// figures (1, 2, 3, 15) and the confidence tables (2, 3), and skips the
// extension exhibits that rebuild auxiliary suites.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pathsel/internal/core"
	"pathsel/internal/experiments"
	"pathsel/internal/report"
	"pathsel/internal/snapshot"
	"pathsel/internal/stats"
)

func main() {
	preset := flag.String("preset", "full", "campaign scale: quick, full or scale")
	seed := flag.Int64("seed", 1, "master seed for topology, network and campaigns")
	workers := flag.Int("workers", 0, "analysis worker goroutines (0 = one per CPU, 1 = sequential)")
	out := flag.String("out", "", "directory for per-figure CDF data files (optional)")
	snapDir := flag.String("snapshot-dir", "", "also persist the built suite as a snapshot for serve warm starts")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Concurrency: *workers}
	var err error
	if cfg.Preset, err = experiments.ParsePreset(*preset); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	if err := run(cfg, *out, *snapDir); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// seriesFig names one CDF-series exhibit of the paper.
type seriesFig struct {
	id    string
	title string
	fn    func(*experiments.Suite) ([]experiments.Series, error)
}

// scaleFigs is the exhibit subset the scale preset runs: the headline
// improvement CDFs that exercise the planet-scale substrate without the
// episode and bandwidth campaigns' quadratic post-processing.
var scaleFigs = []seriesFig{
	{"figure1", "Figure 1: CDF of mean RTT difference (default - best alternate)", experiments.Figure1},
	{"figure2", "Figure 2: CDF of RTT ratio (default / best alternate)", experiments.Figure2},
	{"figure3", "Figure 3: CDF of mean loss-rate difference", experiments.Figure3},
	{"figure15", "Figure 15: propagation delay vs mean RTT improvement (UW3)", experiments.Figure15},
}

var allFigs = []seriesFig{
	{"figure1", "Figure 1: CDF of mean RTT difference (default - best alternate)", experiments.Figure1},
	{"figure2", "Figure 2: CDF of RTT ratio (default / best alternate)", experiments.Figure2},
	{"figure3", "Figure 3: CDF of mean loss-rate difference", experiments.Figure3},
	{"figure4", "Figure 4: CDF of bandwidth difference (one-hop alternates)", experiments.Figure4},
	{"figure5", "Figure 5: CDF of bandwidth ratio", experiments.Figure5},
	{"figure6", "Figure 6: mean vs median RTT improvement (one-hop, D2-NA)", experiments.Figure6},
	{"figure9", "Figure 9: RTT improvement by time of day (UW3)", experiments.Figure9},
	{"figure10", "Figure 10: loss improvement by time of day (UW3)", experiments.Figure10},
	{"figure11", "Figure 11: long-term average vs simultaneous episodes (UW4)", experiments.Figure11},
	{"figure15", "Figure 15: propagation delay vs mean RTT improvement (UW3)", experiments.Figure15},
}

// printTable1 prints the dataset-characteristics table.
func printTable1(s *experiments.Suite) error {
	fmt.Println("\n== Table 1: dataset characteristics ==")
	rows := [][]string{{"Dataset", "Hosts", "Measurements", "Paths covered"}}
	for _, c := range experiments.Table1(s) {
		rows = append(rows, []string{
			c.Name, fmt.Sprint(c.Hosts), fmt.Sprint(c.Measurements),
			fmt.Sprintf("%.0f%%", c.PercentCovered),
		})
	}
	return report.Table(os.Stdout, rows)
}

// printSeriesFigs runs and prints the given CDF exhibits, dumping data
// files when outDir is set.
func printSeriesFigs(s *experiments.Suite, outDir string, figs []seriesFig) error {
	for _, fig := range figs {
		series, err := fig.fn(s)
		if err != nil {
			return fmt.Errorf("%s: %w", fig.id, err)
		}
		fmt.Printf("\n== %s ==\n", fig.title)
		for _, sr := range series {
			fmt.Printf("  %-26s %s\n", sr.Name, report.CDFSummary(sr.CDF))
			if outDir != "" {
				if err := dumpSeries(outDir, fig.id, sr); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// printVerdictTables prints Tables 2 and 3, the 95%-confidence verdict
// censuses for mean RTT and mean loss rate.
func printVerdictTables(s *experiments.Suite) error {
	for _, tab := range []struct {
		id    string
		title string
		fn    func(*experiments.Suite) ([]experiments.VerdictRow, error)
	}{
		{"table2", "Table 2: mean RTT at 95% confidence", experiments.Table2},
		{"table3", "Table 3: mean loss rate at 95% confidence", experiments.Table3},
	} {
		vrows, err := tab.fn(s)
		if err != nil {
			return fmt.Errorf("%s: %w", tab.id, err)
		}
		fmt.Printf("\n== %s ==\n", tab.title)
		trows := [][]string{{"Alternate is", "UW1", "UW3", "D2-NA", "D2"}}
		kinds := []string{"Better", "Indeterminate", "Worse", "Is zero"}
		for ki, kind := range kinds {
			row := []string{kind}
			for _, vr := range vrows {
				b, i, w, z := vr.Counts.Percent()
				v := []float64{b, i, w, z}[ki]
				row = append(row, fmt.Sprintf("%.0f%%", v))
			}
			trows = append(trows, row)
		}
		if err := report.Table(os.Stdout, trows); err != nil {
			return err
		}
	}
	return nil
}

// runScale is the scale preset's exhibit subset: topology census,
// Table 1, the headline CDFs, and the confidence tables. The extension
// exhibits that rebuild auxiliary suites (cause ablation, seed
// sensitivity, overlay, route dynamics) are deliberately skipped —
// they would multiply the planet-scale build many times over.
func runScale(s *experiments.Suite, outDir string) error {
	st := s.TopoUW.Stats()
	fmt.Printf("\n== Topology: %v ==\n", st)
	if err := printTable1(s); err != nil {
		return err
	}
	if err := printSeriesFigs(s, outDir, scaleFigs); err != nil {
		return err
	}
	return printVerdictTables(s)
}

func run(cfg experiments.Config, outDir, snapDir string) error {
	fmt.Printf("building %s suite (seed %d)...\n", cfg.Preset, cfg.Seed)
	s, err := experiments.Build(cfg)
	if err != nil {
		return err
	}
	if snapDir != "" {
		if err := os.MkdirAll(snapDir, 0o755); err != nil {
			return err
		}
		path, err := snapshot.Write(snapDir, s)
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		fmt.Printf("suite snapshot written to %s\n", path)
	}
	if cfg.Preset == experiments.Scale {
		return runScale(s, outDir)
	}

	if err := printTable1(s); err != nil {
		return err
	}

	if err := printSeriesFigs(s, outDir, allFigs); err != nil {
		return err
	}

	for _, ci := range []struct {
		id string
		fn func(*experiments.Suite) ([]core.CIPoint, error)
	}{
		{"figure7", experiments.Figure7}, {"figure8", experiments.Figure8},
	} {
		id, fn := ci.id, ci.fn
		pts, err := fn(s)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		wide := 0
		for _, p := range pts {
			if p.HalfWidth > 0 {
				wide++
			}
		}
		fmt.Printf("\n== %s: %d pairs, %d with nonzero 95%% confidence half-widths ==\n", id, len(pts), wide)
		if outDir != "" {
			if err := dumpCIPoints(outDir, id, pts); err != nil {
				return err
			}
		}
	}

	if err := printVerdictTables(s); err != nil {
		return err
	}

	res12, err := experiments.Figure12(s)
	if err != nil {
		return fmt.Errorf("figure12: %w", err)
	}
	fmt.Println("\n== Figure 12: greedy removal of most influential hosts (UW3) ==")
	fmt.Printf("  %-26s %s\n", res12.All.Name, report.CDFSummary(res12.All.CDF))
	fmt.Printf("  %-26s %s\n", res12.Without.Name, report.CDFSummary(res12.Without.CDF))
	fmt.Print("  removed:")
	for _, st := range res12.Removed {
		fmt.Printf(" %d", st.Removed)
	}
	fmt.Println()
	if outDir != "" {
		if err := dumpSeries(outDir, "figure12", res12.All); err != nil {
			return err
		}
		if err := dumpSeries(outDir, "figure12", res12.Without); err != nil {
			return err
		}
	}

	sr13, err := experiments.Figure13(s)
	if err != nil {
		return fmt.Errorf("figure13: %w", err)
	}
	fmt.Println("\n== Figure 13: per-host normalized improvement contribution (UW3) ==")
	fmt.Printf("  %s\n", report.CDFSummary(sr13.CDF))
	if outDir != "" {
		if err := dumpSeries(outDir, "figure13", sr13); err != nil {
			return err
		}
	}

	counts14, err := experiments.Figure14(s)
	if err != nil {
		return fmt.Errorf("figure14: %w", err)
	}
	fmt.Printf("\n== Figure 14: AS appearances in default vs alternate paths (UW1): %d ASes ==\n", len(counts14))
	{
		xs := make([]float64, len(counts14))
		ys := make([]float64, len(counts14))
		for i, c := range counts14 {
			xs[i], ys[i] = float64(c.Direct), float64(c.Alternate)
		}
		if plot := report.AsciiScatter(xs, ys, 12, 56); plot != "" {
			fmt.Print(plot)
			fmt.Println("  (x: default paths through AS, y: alternate paths through AS)")
		}
	}
	if outDir != "" {
		var b strings.Builder
		for _, c := range counts14 {
			fmt.Fprintf(&b, "%d\t%d\t%d\n", c.AS, c.Direct, c.Alternate)
		}
		if err := os.WriteFile(filepath.Join(outDir, "figure14.dat"), []byte(b.String()), 0o644); err != nil {
			return err
		}
	}

	decs, err := experiments.Figure16(s)
	if err != nil {
		return fmt.Errorf("figure16: %w", err)
	}
	census := core.GroupCensus(decs)
	fmt.Printf("\n== Figure 16: propagation vs queuing decomposition (UW3, %d pairs) ==\n", len(decs))
	for g := core.Group1; g <= core.Group6; g++ {
		fmt.Printf("  group %d: %d\n", int(g), census[g])
	}
	{
		xs := make([]float64, len(decs))
		ys := make([]float64, len(decs))
		for i, d := range decs {
			xs[i], ys[i] = d.TotalDiff, d.PropDiff
		}
		if plot := report.AsciiScatter(xs, ys, 12, 56); plot != "" {
			fmt.Print(plot)
			fmt.Println("  (x: mean-RTT difference, y: propagation-delay difference)")
		}
	}
	if outDir != "" {
		var b strings.Builder
		for _, d := range decs {
			fmt.Fprintf(&b, "%g\t%g\t%d\n", d.TotalDiff, d.PropDiff, int(d.Group))
		}
		if err := os.WriteFile(filepath.Join(outDir, "figure16.dat"), []byte(b.String()), 0o644); err != nil {
			return err
		}
	}

	// Extension experiments (see EXPERIMENTS.md, Extensions): analyses
	// the original study could not run on the real Internet.
	cons, err := experiments.ValidateConservativity(s)
	if err != nil {
		return fmt.Errorf("conservativity: %w", err)
	}
	fmt.Println("\n== Extension: source-routing validation of the conservativity claim ==")
	fmt.Printf("  pairs %d, predicted better %d, confirmed by source routing %.0f%%, estimate conservative %.0f%%\n",
		cons.Pairs, cons.PredictedBetter, 100*cons.ConfirmationFraction(), 100*cons.ConservativeFraction())

	tri, err := experiments.Triangulation(s)
	if err != nil {
		return fmt.Errorf("triangulation: %w", err)
	}
	viol := 0
	for _, r := range tri {
		if r.ViolatesTriangle() {
			viol++
		}
	}
	fmt.Println("\n== Extension: host-distance triangulation (FJP+99-style) ==")
	fmt.Printf("  triangle-inequality violations: %d of %d pairs (%.0f%%)\n",
		viol, len(tri), 100*float64(viol)/float64(len(tri)))

	dyn, err := experiments.RouteDynamics(s, cfg.Seed)
	if err != nil {
		return fmt.Errorf("route dynamics: %w", err)
	}
	fmt.Println("\n== Extension: route dynamics (Paxson-style dominance census) ==")
	fmt.Printf("  %d routing epochs; %d of %d pairs dominated by one route (mean dominance %.2f, max %d routes)\n",
		dyn.Epochs, dyn.DominatedPairs, dyn.Pairs, dyn.MeanDominantFraction, dyn.MaxDistinctRoutes)

	_, infl, err := experiments.PathInflation(s)
	if err != nil {
		return fmt.Errorf("path inflation: %w", err)
	}
	ep, err := core.NewAnalyzer(s.UW4A).WithConcurrency(cfg.Concurrency).AnalyzeEpisodes()
	if err != nil {
		return fmt.Errorf("episode churn: %w", err)
	}
	if len(ep.RelayChurn) > 0 {
		sum := 0.0
		for _, c := range ep.RelayChurn {
			sum += c
		}
		fmt.Println("\n== Extension: best-relay churn across UW4-A episodes ==")
		fmt.Printf("  mean churn %.0f%%: consecutive episodes pick a different best relay for the\n",
			100*sum/float64(len(ep.RelayChurn)))
		fmt.Println("  same pair that often (Section 6.4's \"different alternate paths being")
		fmt.Println("  selected as best in each episode\")")
	}

	tcpv, err := experiments.ValidateTCPModel(s, cfg.Seed)
	if err != nil {
		return fmt.Errorf("tcp model validation: %w", err)
	}
	fmt.Println("\n== Extension: Mathis-model validation against simulated TCP Reno ==")
	fmt.Printf("  %d N2 paths: rank correlation %.3f, median sim/model ratio %.2f, %.0f%% within 2x\n",
		tcpv.Pairs, tcpv.RankCorrelation, tcpv.MedianRatio, 100*tcpv.WithinFactor2)

	pv, err := experiments.ValidatePacketLevel(s)
	if err != nil {
		return fmt.Errorf("packet-level validation: %w", err)
	}
	fmt.Printf("\n== Extension: packet-level TCP vs Mathis vs rounds model (%d of %d N2 pairs, %gs transfers) ==\n",
		pv.Pairs, pv.TotalPairs, pv.DurationSec)
	fmt.Printf("  packet/mathis: median ratio %.2f, %.0f%% within 2x, rank correlation %.3f\n",
		pv.MedianRatioMathis, 100*pv.WithinFactor2Mathis, pv.RankCorrMathis)
	fmt.Printf("  packet/tcpsim: median ratio %.2f, %.0f%% within 2x, rank correlation %.3f\n",
		pv.MedianRatioSim, 100*pv.WithinFactor2Sim, pv.RankCorrSim)
	prows := [][]string{{"Regime", "Pairs", "Median packet/mathis", "Median |rel err|"}}
	for _, reg := range pv.Regimes {
		prows = append(prows, []string{
			reg.Name, fmt.Sprint(reg.Pairs),
			fmt.Sprintf("%.2f", reg.MedianRatio),
			fmt.Sprintf("%.2f", reg.MedianAbsRelErr),
		})
	}
	if err := report.Table(os.Stdout, prows); err != nil {
		return err
	}
	if err := dumpPacketLevel(overlayDir(outDir), pv); err != nil {
		return err
	}

	fmt.Println("\n== Extension: path inflation vs the policy-free optimum ==")
	fmt.Printf("  median inflation %.2fx, p90 %.2fx; %.0f%% of pairs inflated >=20%%;\n",
		infl.MedianInflation, infl.P90Inflation, 100*infl.InflatedFraction)
	fmt.Printf("  alternates recover a mean %.0f%% of the gap (>=half the gap for %.0f%% of inflated pairs)\n",
		100*infl.MeanRecovery, 100*infl.HalfRecoveredFraction)

	cross, err := experiments.CrossMetrics(s)
	if err != nil {
		return fmt.Errorf("cross metrics: %w", err)
	}
	fmt.Println("\n== Extension: cross-metric agreement of best alternates ==")
	fmt.Printf("  RTT-best alternates that also improve loss: %d of %d (%.0f%%)\n",
		cross.RTTAlsoLoss, cross.RTTWinners, 100*float64(cross.RTTAlsoLoss)/float64(cross.RTTWinners))
	fmt.Printf("  loss-best alternates that also improve RTT: %d of %d (%.0f%%)\n",
		cross.LossAlsoRTT, cross.LossWinners, 100*float64(cross.LossAlsoRTT)/float64(cross.LossWinners))

	causes, err := experiments.CauseAblation(experiments.Config{Seed: cfg.Seed})
	if err != nil {
		return fmt.Errorf("cause ablation: %w", err)
	}
	fmt.Println("\n== Extension: mechanism ablation (one modeled cause removed at a time) ==")
	crows := [][]string{{"Variant", "Alt better", "Median gain (ms)", "Mean default RTT (ms)"}}
	for _, r := range causes {
		crows = append(crows, []string{
			r.Variant,
			fmt.Sprintf("%.0f%%", 100*r.BetterFraction),
			fmt.Sprintf("%.1f", r.MedianImprovement),
			fmt.Sprintf("%.1f", r.MeanDefaultRTT),
		})
	}
	if err := report.Table(os.Stdout, crows); err != nil {
		return err
	}

	ov, err := experiments.Overlay(s, cfg.Seed)
	if err != nil {
		return fmt.Errorf("overlay: %w", err)
	}
	fmt.Printf("\n== Extension: online overlay vs default vs offline optimum (%d nodes, %d pairs, %d routing epochs) ==\n",
		ov.Nodes, ov.Pairs, ov.Epochs)
	orows := [][]string{{"Probes/s", "Avail default", "Avail overlay", "Avail optimal",
		"RTT default", "RTT overlay", "RTT optimal", "Relay share", "Median reaction"}}
	for _, b := range ov.Budgets {
		reaction := "-"
		if med, err := stats.NewCDF(b.Reactions).Quantile(0.5); err == nil {
			reaction = fmt.Sprintf("%.0f s", med)
		}
		orows = append(orows, []string{
			fmt.Sprintf("%.1f", b.ProbesPerSec),
			fmt.Sprintf("%.3f%%", 100*b.Default.Availability),
			fmt.Sprintf("%.3f%%", 100*b.Overlay.Availability),
			fmt.Sprintf("%.3f%%", 100*b.Optimal.Availability),
			fmt.Sprintf("%.1f ms", b.Default.MeanRTTMs),
			fmt.Sprintf("%.1f ms", b.Overlay.MeanRTTMs),
			fmt.Sprintf("%.1f ms", b.Optimal.MeanRTTMs),
			fmt.Sprintf("%.0f%%", 100*b.RelayShare),
			reaction,
		})
	}
	if err := report.Table(os.Stdout, orows); err != nil {
		return err
	}
	if err := dumpOverlay(overlayDir(outDir), ov); err != nil {
		return err
	}

	mp, err := experiments.Multipath(s)
	if err != nil {
		return fmt.Errorf("multipath: %w", err)
	}
	fmt.Printf("\n== Extension: k-alternate path sets and AS disjointness (%s, %d pairs) ==\n",
		mp.Dataset, mp.Pairs)
	mrows := [][]string{{"k", "Mean improvement (ms)", "AS-disjoint pairs", "Mean max disjointness"}}
	for _, pt := range mp.Curve {
		mrows = append(mrows, []string{
			fmt.Sprint(pt.K),
			fmt.Sprintf("%.2f", pt.MeanImprovementMs),
			fmt.Sprintf("%.0f%%", 100*pt.FullyDisjointFrac),
			fmt.Sprintf("%.2f", pt.MeanMaxDisjointness),
		})
	}
	if err := report.Table(os.Stdout, mrows); err != nil {
		return err
	}
	srows := [][]string{{"Strategy", "Mean pick RTT (ms)", "Mean AS disjointness"}}
	for _, row := range mp.Strategies {
		srows = append(srows, []string{
			row.Strategy,
			fmt.Sprintf("%.1f", row.MeanLatencyMs),
			fmt.Sprintf("%.2f", row.MeanDisjointness),
		})
	}
	if err := report.Table(os.Stdout, srows); err != nil {
		return err
	}
	if err := dumpMultipath(overlayDir(outDir), mp); err != nil {
		return err
	}

	fracs, err := experiments.SeedSensitivity(cfg.Seed, 5)
	if err != nil {
		return fmt.Errorf("seed sensitivity: %w", err)
	}
	fmt.Print("\n== Extension: seed sensitivity of the headline fraction ==\n  better-alternate fraction across 5 topology seeds:")
	for _, f := range fracs {
		fmt.Printf(" %.0f%%", 100*f)
	}
	fmt.Println()
	return nil
}

// overlayDir resolves where the overlay exhibit's data files go: the
// -out directory when given, otherwise results/ — the exhibit always
// leaves plottable artifacts behind.
func overlayDir(outDir string) string {
	if outDir != "" {
		return outDir
	}
	return "results"
}

// dumpOverlay writes the overlay exhibit's data files: a per-budget
// summary, one failover-reaction CDF per probing budget, and the
// per-connection RTT CDFs of the reference budget.
func dumpOverlay(dir string, ov experiments.OverlayResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("# probes_per_sec\tavail_default\tavail_overlay\tavail_optimal\trtt_default_ms\trtt_overlay_ms\trtt_optimal_ms\tloss_default\tloss_overlay\tloss_optimal\trelay_share\tprobes\tswitches\toutages\treactions\n")
	for _, bd := range ov.Budgets {
		fmt.Fprintf(&b, "%g\t%.6f\t%.6f\t%.6f\t%.4f\t%.4f\t%.4f\t%.6f\t%.6f\t%.6f\t%.4f\t%d\t%d\t%d\t%d\n",
			bd.ProbesPerSec,
			bd.Default.Availability, bd.Overlay.Availability, bd.Optimal.Availability,
			bd.Default.MeanRTTMs, bd.Overlay.MeanRTTMs, bd.Optimal.MeanRTTMs,
			bd.Default.MeanLoss, bd.Overlay.MeanLoss, bd.Optimal.MeanLoss,
			bd.RelayShare, bd.ProbesSent, bd.Switches, bd.OutagesDetected, len(bd.Reactions))
	}
	if err := os.WriteFile(filepath.Join(dir, "overlay-summary.dat"), []byte(b.String()), 0o644); err != nil {
		return err
	}
	for _, bd := range ov.Budgets {
		name := fmt.Sprintf("overlay-reaction-b%s.dat", sanitize(fmt.Sprintf("%g", bd.ProbesPerSec)))
		if err := dumpCDFFile(dir, name, bd.Reactions); err != nil {
			return err
		}
	}
	for _, rtt := range []struct {
		name   string
		values []float64
	}{
		{"overlay-pair-rtt-overlay.dat", ov.OverlayRTTs},
		{"overlay-pair-rtt-default.dat", ov.DefaultRTTs},
		{"overlay-pair-rtt-optimal.dat", ov.OptimalRTTs},
	} {
		if err := dumpCDFFile(dir, rtt.name, rtt.values); err != nil {
			return err
		}
	}
	return nil
}

// dumpMultipath writes the multipath exhibit's data files: the
// k-vs-benefit curve and the per-pair best-AS-disjointness CDF.
func dumpMultipath(dir string, mp experiments.MultipathResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("# k\tmean_improvement_ms\tfully_disjoint_frac\tmean_max_disjointness\n")
	for _, pt := range mp.Curve {
		fmt.Fprintf(&b, "%d\t%.6f\t%.6f\t%.6f\n",
			pt.K, pt.MeanImprovementMs, pt.FullyDisjointFrac, pt.MeanMaxDisjointness)
	}
	if err := os.WriteFile(filepath.Join(dir, "multipath-kcurve.dat"), []byte(b.String()), 0o644); err != nil {
		return err
	}
	return dumpCDFFile(dir, "multipath-disjointness.dat", mp.Disjointness)
}

// dumpPacketLevel writes the packet-level validation's data files: the
// per-pair three-way comparison and the regime divergence summary.
func dumpPacketLevel(dir string, pv experiments.PacketValidation) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("# pair\trtt_ms\tloss\tpacket_kbs\tmathis_kbs\ttcpsim_kbs\tretransmits\ttimeouts\tfast_retx\tout_of_order\n")
	for _, r := range pv.Results {
		fmt.Fprintf(&b, "%s\t%.4f\t%.6f\t%.4f\t%.4f\t%.4f\t%d\t%d\t%d\t%d\n",
			r.Pair, r.RTTMs, r.Loss, r.PacketKBs, r.MathisKBs, r.SimKBs,
			r.Retransmits, r.Timeouts, r.FastRetx, r.OutOfOrder)
	}
	if err := os.WriteFile(filepath.Join(dir, "packetlevel-pairs.dat"), []byte(b.String()), 0o644); err != nil {
		return err
	}
	b.Reset()
	b.WriteString("# regime\tpairs\tmedian_packet_mathis_ratio\tmedian_abs_rel_err\n")
	for _, reg := range pv.Regimes {
		fmt.Fprintf(&b, "%s\t%d\t%.4f\t%.4f\n", reg.Name, reg.Pairs, reg.MedianRatio, reg.MedianAbsRelErr)
	}
	return os.WriteFile(filepath.Join(dir, "packetlevel-regimes.dat"), []byte(b.String()), 0o644)
}

func dumpCDFFile(dir, name string, values []float64) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.DumpCDF(f, stats.NewCDF(values), 500)
}

func dumpSeries(dir, figID string, sr experiments.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s-%s.dat", figID, sanitize(sr.Name))
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.DumpCDF(f, sr.CDF, 500)
}

func dumpCIPoints(dir, figID string, pts []core.CIPoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	for i, p := range pts {
		frac := float64(i+1) / float64(len(pts))
		fmt.Fprintf(&b, "%g\t%.4f\t%g\n", p.Improvement, frac, p.HalfWidth)
	}
	return os.WriteFile(filepath.Join(dir, figID+".dat"), []byte(b.String()), 0o644)
}

func sanitize(s string) string {
	s = strings.ToLower(s)
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, s)
	return strings.Trim(s, "-")
}
