// Command repolint runs the repo's custom static-analysis suite — the
// determinism, cancellation and metrics-invariant checkers under
// internal/analysis — over a set of Go package patterns, in the manner
// of an x/tools multichecker.
//
// Usage:
//
//	repolint [-only names] [-list] [packages...]
//
// With no packages, ./... is checked. Exit status is 1 if any analyzer
// reported a finding, 2 on usage or load errors. Individual findings
// are suppressed in source with //repolint:allow <analyzer> on the
// offending line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pathsel/internal/analysis/lint"
	"pathsel/internal/analysis/repolint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := repolint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			unknown := make([]string, 0, len(keep))
			for name := range keep {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "repolint: unknown analyzer(s) %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.NewLoader().Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
