// Command repolint runs the repo's custom static-analysis suite — the
// determinism, cancellation, allocation and metrics-invariant checkers
// under internal/analysis — over a set of Go package patterns, in the
// manner of an x/tools multichecker.
//
// Usage:
//
//	repolint [-only names] [-list] [-fix] [-json] [packages...]
//
// With no packages, ./... is checked. All requested packages are
// loaded and type-checked once into a single shared program, so the
// interprocedural analyzers (detflow, ctxleak, deprecated) see the
// whole call graph and the per-analyzer cost is one AST walk, not one
// load.
//
// -json emits a machine-readable report on stdout instead of the
// line-oriented findings. -fix applies every suggested fix in place
// (e.g. rewriting deprecated BestAlternates calls to the Query form)
// and reports what it rewrote; findings without fixes still count
// toward the exit status.
//
// Exit status is 1 if any analyzer reported a finding, 2 on usage or
// load errors. Individual findings are suppressed in source with
// //repolint:allow <analyzer> on the offending line or the line above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pathsel/internal/analysis/lint"
	"pathsel/internal/analysis/repolint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source in place")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON report on stdout")
	flag.Parse()

	analyzers := repolint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			unknown := make([]string, 0, len(keep))
			for name := range keep {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "repolint: unknown analyzer(s) %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.NewLoader().Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(2)
	}
	prog := lint.NewProgram(pkgs)
	diags, err := prog.Run(analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(2)
	}

	if *fix {
		fixedFiles, err := lint.WriteFixes(prog.Fset, diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repolint: applying fixes: %v\n", err)
			os.Exit(2)
		}
		for _, name := range fixedFiles {
			fmt.Printf("repolint: fixed %s\n", name)
		}
		// Findings whose fix was just applied are resolved; the rest
		// still need a human.
		var remaining []lint.Diagnostic
		for _, d := range diags {
			if len(d.SuggestedFixes) == 0 {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}

	if *jsonOut {
		report := lint.NewReport(prog.Fset, diags)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
