package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pathsel
cpu: Imaginary CPU @ 3.00GHz
BenchmarkSuiteBuild
BenchmarkSuiteBuild-8   	       1	1234567890 ns/op
BenchmarkTable1-8       	     100	     36674 ns/op	    2048 B/op	      12 allocs/op
BenchmarkCustom         	      10	       5.5 widgets/op
PASS
ok  	pathsel	12.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "pathsel" {
		t.Errorf("headers not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "SuiteBuild" || b.Procs != 8 || b.Iterations != 1 || b.NsPerOp != 1234567890 {
		t.Errorf("first result mangled: %+v", b)
	}
	b = rep.Benchmarks[1]
	if b.Name != "Table1" || b.Iterations != 100 || b.BytesPerOp != 2048 || b.AllocsPerOp != 12 {
		t.Errorf("benchmem fields mangled: %+v", b)
	}
	b = rep.Benchmarks[2]
	if b.Name != "Custom" || b.Procs != 0 || b.Metrics["widgets/op"] != 5.5 {
		t.Errorf("custom metric mangled: %+v", b)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok \tpathsel\t0.1s\n")); err == nil {
		t.Fatal("expected an error when no result lines are present")
	}
}

func TestParseRejectsUnpairedFields(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-4 10 99 ns/op 42\n")); err == nil {
		t.Fatal("expected an error for an unpaired value")
	}
}

func TestSplitName(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"Foo-8", "Foo", 8},
		{"Foo", "Foo", 0},
		{"Edge-Case-16", "Edge-Case", 16},
		{"Trailing-", "Trailing-", 0},
	}
	for _, c := range cases {
		name, procs := splitName(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitName(%q) = %q, %d; want %q, %d", c.in, name, procs, c.name, c.procs)
		}
	}
}
