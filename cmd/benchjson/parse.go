package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// report is the JSON shape of one benchmark run. GoVersion is stamped
// by main (the `go test` text output does not carry it); the campaign
// preset and substrate size (ases, hosts, links, edges) arrive as
// sub-benchmark names and custom metrics on the result lines.
type report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	GoVersion  string      `json:"goVersion,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

// benchmark is one result line. The standard ns/op, B/op and
// allocs/op units get dedicated fields; any other unit (custom
// b.ReportMetric metrics) lands in Metrics.
type benchmark struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp,omitempty"`
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`

	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// splitName separates "BenchmarkFoo-8" into the bare name and the
// GOMAXPROCS suffix (0 when absent).
func splitName(s string) (string, int) {
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return s, 0
	}
	procs, err := strconv.Atoi(s[i+1:])
	if err != nil || procs <= 0 {
		return s, 0
	}
	return s[:i], procs
}

// parse reads `go test -bench` output and collects the result lines.
// Non-benchmark lines (PASS, ok, test log output) are skipped; header
// lines (goos, goarch, pkg, cpu) annotate the report.
func parse(r io.Reader) (report, error) {
	rep := report{Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, hdr := range []struct {
			prefix string
			field  *string
		}{
			{"goos: ", &rep.Goos},
			{"goarch: ", &rep.Goarch},
			{"pkg: ", &rep.Pkg},
			{"cpu: ", &rep.CPU},
		} {
			if v, ok := strings.CutPrefix(line, hdr.prefix); ok {
				*hdr.field = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name iterations {value unit}..."; a bare
		// "BenchmarkFoo" line (the echo before the result) has one field.
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that happens to start with Benchmark
		}
		b := benchmark{Iterations: iters}
		b.Name, b.Procs = splitName(strings.TrimPrefix(fields[0], "Benchmark"))
		if (len(fields)-2)%2 != 0 {
			return rep, fmt.Errorf("malformed result line %q: unpaired value/unit", line)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return rep, fmt.Errorf("malformed value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("no benchmark result lines on input")
	}
	return rep, nil
}
