// Command benchjson converts `go test -bench` text output on stdin
// into a JSON report on stdout, so benchmark baselines can be
// committed and diffed mechanically.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.GoVersion = runtime.Version()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
