package main

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"sync"

	"pathsel/internal/core"
	"pathsel/internal/experiments"
	"pathsel/internal/stats"
)

// handler serves the suite's analyses. Figure computations are memoized
// per figure (they are deterministic), so repeated requests are cheap;
// the mutex keeps the memoization safe under concurrent requests.
type handler struct {
	suite *experiments.Suite
	mux   *http.ServeMux

	mu      sync.Mutex
	figures map[string][]experiments.Series
}

func newHandler(s *experiments.Suite) http.Handler {
	h := &handler{suite: s, mux: http.NewServeMux(), figures: map[string][]experiments.Series{}}
	h.mux.HandleFunc("GET /{$}", h.index)
	h.mux.HandleFunc("GET /api/table1", h.table1)
	h.mux.HandleFunc("GET /api/table/{n}", h.verdictTable)
	h.mux.HandleFunc("GET /api/figure/{n}", h.figure)
	h.mux.HandleFunc("GET /api/cdf/{fig}/{series}", h.cdf)
	return h.mux
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// seriesFigures maps figure numbers to their drivers. Figures with
// non-series output (7, 8, 12, 13, 14, 16) are adapted below.
var seriesFigures = map[string]func(*experiments.Suite) ([]experiments.Series, error){
	"1": experiments.Figure1, "2": experiments.Figure2, "3": experiments.Figure3,
	"4": experiments.Figure4, "5": experiments.Figure5, "6": experiments.Figure6,
	"9": experiments.Figure9, "10": experiments.Figure10, "11": experiments.Figure11,
	"15": experiments.Figure15,
}

// series returns (memoized) curves for a figure number, including the
// adapted non-series figures.
func (h *handler) series(n string) ([]experiments.Series, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s, ok := h.figures[n]; ok {
		return s, nil
	}
	var out []experiments.Series
	var err error
	switch n {
	case "7", "8":
		fn := experiments.Figure7
		if n == "8" {
			fn = experiments.Figure8
		}
		var pts []core.CIPoint
		pts, err = fn(h.suite)
		if err == nil {
			vals := make([]float64, len(pts))
			for i, p := range pts {
				vals[i] = p.Improvement
			}
			out = []experiments.Series{{Name: "improvement", CDF: stats.NewCDF(vals)}}
		}
	case "12":
		var res experiments.Figure12Result
		res, err = experiments.Figure12(h.suite)
		if err == nil {
			out = []experiments.Series{res.All, res.Without}
		}
	case "13":
		var sr experiments.Series
		sr, err = experiments.Figure13(h.suite)
		if err == nil {
			out = []experiments.Series{sr}
		}
	case "14":
		var counts []core.ASCount
		counts, err = experiments.Figure14(h.suite)
		if err == nil {
			direct := make([]float64, len(counts))
			alt := make([]float64, len(counts))
			for i, c := range counts {
				direct[i] = float64(c.Direct)
				alt[i] = float64(c.Alternate)
			}
			out = []experiments.Series{
				{Name: "direct", CDF: stats.NewCDF(direct)},
				{Name: "alternate", CDF: stats.NewCDF(alt)},
			}
		}
	case "16":
		var decs []core.DelayDecomposition
		decs, err = experiments.Figure16(h.suite)
		if err == nil {
			total := make([]float64, len(decs))
			prop := make([]float64, len(decs))
			for i, d := range decs {
				total[i] = d.TotalDiff
				prop[i] = d.PropDiff
			}
			out = []experiments.Series{
				{Name: "total", CDF: stats.NewCDF(total)},
				{Name: "propagation", CDF: stats.NewCDF(prop)},
			}
		}
	default:
		fn, ok := seriesFigures[n]
		if !ok {
			return nil, fmt.Errorf("unknown figure %q", n)
		}
		out, err = fn(h.suite)
	}
	if err != nil {
		return nil, err
	}
	h.figures[n] = out
	return out, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *handler) table1(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, experiments.Table1(h.suite))
}

type verdictJSON struct {
	Dataset       string  `json:"dataset"`
	Better        float64 `json:"betterPct"`
	Indeterminate float64 `json:"indeterminatePct"`
	Worse         float64 `json:"worsePct"`
	BothZero      float64 `json:"bothZeroPct"`
}

func (h *handler) verdictTable(w http.ResponseWriter, r *http.Request) {
	var rows []experiments.VerdictRow
	var err error
	switch r.PathValue("n") {
	case "2":
		rows, err = experiments.Table2(h.suite)
	case "3":
		rows, err = experiments.Table3(h.suite)
	default:
		http.Error(w, "unknown table (want 2 or 3)", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := make([]verdictJSON, len(rows))
	for i, row := range rows {
		b, ind, wo, z := row.Counts.Percent()
		out[i] = verdictJSON{Dataset: row.Dataset, Better: b, Indeterminate: ind, Worse: wo, BothZero: z}
	}
	writeJSON(w, out)
}

type seriesJSON struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Median      float64 `json:"median"`
	P90         float64 `json:"p90"`
	FracAbove0  float64 `json:"fracAboveZero"`
	CDFEndpoint string  `json:"cdf"`
}

func (h *handler) figure(w http.ResponseWriter, r *http.Request) {
	n := r.PathValue("n")
	series, err := h.series(n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	out := make([]seriesJSON, 0, len(series))
	for _, sr := range series {
		med, _ := sr.CDF.Quantile(0.5)
		p90, _ := sr.CDF.Quantile(0.9)
		out = append(out, seriesJSON{
			Name: sr.Name, N: sr.CDF.N(), Median: med, P90: p90,
			FracAbove0:  sr.CDF.FractionAbove(0),
			CDFEndpoint: fmt.Sprintf("/api/cdf/%s/%s", n, slug(sr.Name)),
		})
	}
	writeJSON(w, out)
}

func (h *handler) cdf(w http.ResponseWriter, r *http.Request) {
	series, err := h.series(r.PathValue("fig"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	want := r.PathValue("series")
	for _, sr := range series {
		if slug(sr.Name) != want {
			continue
		}
		w.Header().Set("Content-Type", "text/tab-separated-values")
		for _, p := range sr.CDF.Points() {
			fmt.Fprintf(w, "%g\t%.4f\n", p.X, p.Frac)
		}
		return
	}
	http.Error(w, "unknown series", http.StatusNotFound)
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>pathsel results</title></head><body>
<h1>The End-to-End Effects of Internet Path Selection — reproduction</h1>
<p>Suite: {{.Preset}} preset, seed {{.Seed}}.</p>
<ul>
<li><a href="/api/table1">Table 1: dataset characteristics</a></li>
<li><a href="/api/table/2">Table 2: RTT verdicts</a> · <a href="/api/table/3">Table 3: loss verdicts</a></li>
{{range .Figures}}<li><a href="/api/figure/{{.}}">Figure {{.}}</a></li>
{{end}}</ul>
</body></html>`))

func (h *handler) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	figures := []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16"}
	err := indexTmpl.Execute(w, map[string]any{
		"Preset":  h.suite.Config.Preset.String(),
		"Seed":    h.suite.Config.Seed,
		"Figures": figures,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// slug normalizes a series name for URLs.
func slug(s string) string {
	s = strings.ToLower(s)
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, s)
}
