package main

import "pathsel/internal/obs"

// serverMetrics bundles the analysis service's own metrics; HTTP-level
// request counters and latencies are added per route by obs.Instrument.
type serverMetrics struct {
	reg *obs.Registry

	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	cacheDedup      *obs.Counter
	cacheEvictions  *obs.Counter
	buildsRejected  *obs.Counter
	buildsCancelled *obs.Counter

	buildsInflight *obs.Gauge
	cacheEntries   *obs.Gauge

	buildDuration *obs.Histogram
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		cacheHits: reg.Counter("suite_cache_hits_total",
			"Requests served from a completed cached suite."),
		cacheMisses: reg.Counter("suite_cache_misses_total",
			"Requests that started a new suite build."),
		cacheDedup: reg.Counter("suite_cache_dedup_total",
			"Requests that joined an in-flight build instead of starting one."),
		cacheEvictions: reg.Counter("suite_cache_evictions_total",
			"Completed suites evicted by the LRU size bound."),
		buildsRejected: reg.Counter("suite_builds_rejected_total",
			"Requests rejected with 429 because build concurrency was saturated."),
		buildsCancelled: reg.Counter("suite_builds_cancelled_total",
			"In-flight builds cancelled because every waiter disconnected."),
		buildsInflight: reg.Gauge("suite_builds_inflight",
			"Suite builds currently running."),
		cacheEntries: reg.Gauge("suite_cache_entries",
			"Suites resident in the cache (including in-flight builds)."),
		buildDuration: reg.Histogram("suite_build_duration_seconds",
			"Wall-clock duration of successful suite builds."),
	}
}
