package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pathsel/internal/experiments"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func testHandler(t *testing.T) http.Handler {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.Build(experiments.Config{Seed: 1, Preset: experiments.Quick})
	})
	if suiteErr != nil {
		t.Fatalf("Build: %v", suiteErr)
	}
	return newHandler(suite)
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestIndex(t *testing.T) {
	h := testHandler(t)
	rec := get(t, h, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "Figure 16") || !strings.Contains(body, "Table 1") {
		t.Errorf("index missing links:\n%s", body)
	}
}

func TestTable1JSON(t *testing.T) {
	h := testHandler(t)
	rec := get(t, h, "/api/table1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var rows []struct {
		Name         string
		Hosts        int
		Measurements int
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Name != "D2-NA" || rows[0].Hosts == 0 {
		t.Errorf("unexpected first row %+v", rows[0])
	}
}

func TestVerdictTables(t *testing.T) {
	h := testHandler(t)
	for _, n := range []string{"2", "3"} {
		rec := get(t, h, "/api/table/"+n)
		if rec.Code != http.StatusOK {
			t.Fatalf("table %s: status %d", n, rec.Code)
		}
		var rows []struct {
			Dataset       string  `json:"dataset"`
			Better        float64 `json:"betterPct"`
			Indeterminate float64 `json:"indeterminatePct"`
			Worse         float64 `json:"worsePct"`
			BothZero      float64 `json:"bothZeroPct"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
			t.Fatalf("table %s: bad JSON: %v", n, err)
		}
		if len(rows) != 4 {
			t.Fatalf("table %s: %d rows", n, len(rows))
		}
		sum := rows[0].Better + rows[0].Indeterminate + rows[0].Worse + rows[0].BothZero
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("table %s: percentages sum to %f", n, sum)
		}
	}
	if rec := get(t, h, "/api/table/9"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown table gave status %d", rec.Code)
	}
}

func TestEveryFigureServes(t *testing.T) {
	h := testHandler(t)
	for _, n := range []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16"} {
		rec := get(t, h, "/api/figure/"+n)
		if rec.Code != http.StatusOK {
			t.Fatalf("figure %s: status %d: %s", n, rec.Code, rec.Body.String())
		}
		var series []struct {
			Name string `json:"name"`
			N    int    `json:"n"`
			CDF  string `json:"cdf"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &series); err != nil {
			t.Fatalf("figure %s: bad JSON: %v", n, err)
		}
		if len(series) == 0 {
			t.Fatalf("figure %s: no series", n)
		}
		for _, sr := range series {
			if sr.N == 0 {
				t.Errorf("figure %s series %s empty", n, sr.Name)
			}
		}
	}
	if rec := get(t, h, "/api/figure/99"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown figure gave status %d", rec.Code)
	}
}

func TestCDFEndpoint(t *testing.T) {
	h := testHandler(t)
	// Discover a series name from figure 1's JSON.
	rec := get(t, h, "/api/figure/1")
	var series []struct {
		CDF string `json:"cdf"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &series); err != nil {
		t.Fatal(err)
	}
	rec = get(t, h, series[0].CDF)
	if rec.Code != http.StatusOK {
		t.Fatalf("cdf endpoint %s: status %d", series[0].CDF, rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("only %d CDF lines", len(lines))
	}
	for _, ln := range lines {
		if len(strings.Split(ln, "\t")) != 2 {
			t.Fatalf("line %q not 2 columns", ln)
		}
	}
	// Final fraction reaches 1.
	if !strings.HasSuffix(lines[len(lines)-1], "1.0000") {
		t.Errorf("last line %q should reach 1.0", lines[len(lines)-1])
	}
	if rec := get(t, h, "/api/cdf/1/el-chupacabra"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown series gave status %d", rec.Code)
	}
}

func TestConcurrentRequests(t *testing.T) {
	h := testHandler(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := []string{"1", "3", "9", "15"}[i%4]
			rec := get(t, h, "/api/figure/"+n)
			if rec.Code != http.StatusOK {
				t.Errorf("figure %s: status %d", n, rec.Code)
			}
		}(i)
	}
	wg.Wait()
}
