// Command serve exposes the reproduction's results over HTTP as an
// on-demand analysis service: every endpoint is parameterized by suite
// configuration (?seed=N&preset=quick|full|scale), built suites are held in
// a size-bounded LRU cache with singleflight deduplication, in-flight
// builds are cancelled when every interested client disconnects, and
// the process reports its own behavior through /metrics, /healthz and
// /debug/pprof. Useful for plugging the reproduction into plotting
// notebooks or dashboards without touching Go.
//
// The process runs in one of three modes:
//
//   - standalone (default): serve every request from this process.
//   - worker: identical serving path; the name documents its place
//     behind a router.
//   - router: serve nothing locally — consistent-hash the (seed,
//     preset) keyspace over the -backends workers, forward with
//     bounded retries, and health-check the fleet.
//
// With -snapshot-dir, cold starts warm from persisted suite snapshots
// (see internal/snapshot): a cache miss first tries to decode the
// suite from disk (milliseconds) and only then falls back to a full
// rebuild, persisting the result for the next process.
//
// Usage:
//
//	serve [-addr :8410] [-preset quick|full|scale] [-seed N] [-workers N]
//	      [-cache N] [-max-builds N] [-timeout D] [-warm]
//	      [-snapshot-dir DIR] [-mode standalone|worker|router]
//	      [-backends URL,URL] [-retries N] [-health-interval D]
//
// Endpoints (all /api endpoints accept ?seed=N&preset=quick|full|scale):
//
//	GET /                   HTML index
//	GET /api/table1         dataset characteristics (JSON)
//	GET /api/table/{2|3}    verdict tables (JSON)
//	GET /api/figure/{1..16} figure series (JSON)
//	GET /api/cdf/{fig}/{series}  one curve as x<TAB>fraction lines
//	GET /api/suites         cached suite configurations (JSON)
//	GET /api/workers        fleet liveness (router mode)
//	GET /metrics            Prometheus text metrics
//	GET /healthz            liveness probe
//	GET /debug/pprof/       runtime profiles
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pathsel/internal/experiments"
	"pathsel/internal/obs"
	"pathsel/internal/server"
)

// withRequestTimeout bounds every request context, so an analysis that
// outlives the deadline is cancelled rather than running unattended.
func withRequestTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// signalContext returns a context cancelled on the signals that mean
// "stop serving": os.Interrupt for terminals and SIGTERM for container
// runtimes and process supervisors, both of which must take the
// graceful-drain path rather than killing in-flight analyses.
func signalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// serveUntilDone serves on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately (no new connections) and
// in-flight requests get up to grace to complete before the process
// gives up on them. A listener failure is returned as-is.
func serveUntilDone(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	errCh := make(chan error, 1)
	//repolint:allow ctxleak -- cancellation reaches this goroutine through srv.Shutdown below, which makes Serve return
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

func main() {
	addr := flag.String("addr", ":8410", "listen address")
	preset := flag.String("preset", "quick", "default campaign scale: quick, full or scale")
	seed := flag.Int64("seed", 1, "default suite seed")
	workers := flag.Int("workers", 0, "analysis worker goroutines (0 = one per CPU, 1 = sequential)")
	cacheSize := flag.Int("cache", 4, "max completed suites held in the LRU cache")
	maxBuilds := flag.Int("max-builds", 2, "max concurrent suite builds before requests get 429")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = none), e.g. 2m")
	warm := flag.Bool("warm", false, "build the default suite before accepting traffic")
	snapshotDir := flag.String("snapshot-dir", "", "directory of suite snapshots for warm starts (empty = always rebuild)")
	mode := flag.String("mode", "standalone", "process role: standalone, worker or router")
	backends := flag.String("backends", "", "comma-separated worker base URLs (router mode), e.g. http://10.0.0.1:8410,http://10.0.0.2:8410")
	retries := flag.Int("retries", 2, "max ring successors tried after the owner fails (router mode)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "worker health-check period (router mode)")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain budget for in-flight requests")
	flag.Parse()

	defaults := experiments.Config{Seed: *seed, Concurrency: *workers}
	var err error
	if defaults.Preset, err = experiments.ParsePreset(*preset); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}
	if err := defaults.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	ctx, stop := signalContext(context.Background())
	defer stop()

	var root http.Handler
	switch *mode {
	case "router":
		var bases []string
		for _, b := range strings.Split(*backends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				bases = append(bases, strings.TrimRight(b, "/"))
			}
		}
		if len(bases) == 0 {
			fmt.Fprintln(os.Stderr, "serve: -mode=router requires -backends")
			os.Exit(2)
		}
		rt := server.NewRouter(bases, defaults, *retries, reg)
		rt.CheckAll(ctx)
		go rt.HealthLoop(ctx, *healthInterval)
		root = rt
		log.Printf("routing over %d workers: %s", len(bases), strings.Join(bases, ", "))
	case "standalone", "worker":
		if *snapshotDir != "" {
			if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				os.Exit(2)
			}
		}
		metrics := server.NewMetrics(reg)
		source := server.NewSnapshotSource(*snapshotDir, experiments.BuildContext, metrics, logger)
		cache := server.NewSuiteCache(*cacheSize, *maxBuilds, *workers, source, metrics)
		if *warm {
			log.Printf("warming %s suite (seed %d)...", defaults.Preset, defaults.Seed)
			start := time.Now()
			if _, err := cache.Get(ctx, defaults); err != nil {
				log.Fatalf("serve: warm build: %v", err)
			}
			log.Printf("suite ready in %v", time.Since(start).Round(time.Millisecond))
		}
		root = server.NewHandler(cache, defaults, reg)
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown -mode %q (want standalone, worker or router)\n", *mode)
		os.Exit(2)
	}

	srv := &http.Server{
		Handler:           withRequestTimeout(*timeout, obs.Instrument(reg, logger, root)),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("serving on %s (%s mode, default %s suite, seed %d)",
		ln.Addr(), *mode, defaults.Preset, defaults.Seed)
	if err := serveUntilDone(ctx, srv, ln, *grace); err != nil && err != http.ErrServerClosed {
		log.Fatalf("serve: %v", err)
	}
	log.Print("drained; bye")
}
