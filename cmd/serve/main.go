// Command serve exposes the reproduction's results over HTTP: it builds
// the dataset suite once and serves the tables, figure CDFs, and
// extension summaries as JSON and TSV, with a small HTML index. Useful
// for plugging the reproduction into plotting notebooks or dashboards
// without touching Go.
//
// Usage:
//
//	serve [-addr :8410] [-preset quick|full] [-seed N] [-workers N]
//
// Endpoints:
//
//	GET /                   HTML index
//	GET /api/table1         dataset characteristics (JSON)
//	GET /api/table/{2|3}    verdict tables (JSON)
//	GET /api/figure/{1..16} figure series (JSON)
//	GET /api/cdf/{fig}/{series}  one curve as x<TAB>fraction lines
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"pathsel/internal/experiments"
)

func main() {
	addr := flag.String("addr", ":8410", "listen address")
	preset := flag.String("preset", "quick", "campaign scale: quick or full")
	seed := flag.Int64("seed", 1, "suite seed")
	workers := flag.Int("workers", 0, "analysis worker goroutines (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Concurrency: *workers}
	switch *preset {
	case "quick":
		cfg.Preset = experiments.Quick
	case "full":
		cfg.Preset = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	log.Printf("building %s suite (seed %d)...", cfg.Preset, cfg.Seed)
	start := time.Now()
	suite, err := experiments.Build(cfg)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("suite ready in %v", time.Since(start).Round(time.Millisecond))

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(suite),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown on interrupt.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("serve: shutdown: %v", err)
		}
	}
}
