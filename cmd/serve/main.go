// Command serve exposes the reproduction's results over HTTP as an
// on-demand analysis service: every endpoint is parameterized by suite
// configuration (?seed=N&preset=quick|full|scale), built suites are held in
// a size-bounded LRU cache with singleflight deduplication, in-flight
// builds are cancelled when every interested client disconnects, and
// the process reports its own behavior through /metrics, /healthz and
// /debug/pprof. Useful for plugging the reproduction into plotting
// notebooks or dashboards without touching Go.
//
// Usage:
//
//	serve [-addr :8410] [-preset quick|full|scale] [-seed N] [-workers N]
//	      [-cache N] [-max-builds N] [-timeout D] [-warm]
//
// Endpoints (all /api endpoints accept ?seed=N&preset=quick|full|scale):
//
//	GET /                   HTML index
//	GET /api/table1         dataset characteristics (JSON)
//	GET /api/table/{2|3}    verdict tables (JSON)
//	GET /api/figure/{1..16} figure series (JSON)
//	GET /api/cdf/{fig}/{series}  one curve as x<TAB>fraction lines
//	GET /api/suites         cached suite configurations (JSON)
//	GET /metrics            Prometheus text metrics
//	GET /healthz            liveness probe
//	GET /debug/pprof/       runtime profiles
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"time"

	"pathsel/internal/experiments"
	"pathsel/internal/obs"
)

// withRequestTimeout bounds every request context, so an analysis that
// outlives the deadline is cancelled rather than running unattended.
func withRequestTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func main() {
	addr := flag.String("addr", ":8410", "listen address")
	preset := flag.String("preset", "quick", "default campaign scale: quick, full or scale")
	seed := flag.Int64("seed", 1, "default suite seed")
	workers := flag.Int("workers", 0, "analysis worker goroutines (0 = one per CPU, 1 = sequential)")
	cacheSize := flag.Int("cache", 4, "max completed suites held in the LRU cache")
	maxBuilds := flag.Int("max-builds", 2, "max concurrent suite builds before requests get 429")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = none), e.g. 2m")
	warm := flag.Bool("warm", false, "build the default suite before accepting traffic")
	flag.Parse()

	defaults := experiments.Config{Seed: *seed, Concurrency: *workers}
	var err error
	if defaults.Preset, err = experiments.ParsePreset(*preset); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}
	if err := defaults.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	cache := newSuiteCache(*cacheSize, *maxBuilds, *workers, experiments.BuildContext, newServerMetrics(reg))
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	if *warm {
		log.Printf("warming %s suite (seed %d)...", defaults.Preset, defaults.Seed)
		start := time.Now()
		if _, err := cache.get(context.Background(), defaults); err != nil {
			log.Fatalf("serve: warm build: %v", err)
		}
		log.Printf("suite ready in %v", time.Since(start).Round(time.Millisecond))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           withRequestTimeout(*timeout, obs.Instrument(reg, logger, newHandler(cache, defaults, reg))),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown on interrupt.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("serving on %s (default %s suite, seed %d; cache %d, max builds %d)",
		*addr, defaults.Preset, defaults.Seed, *cacheSize, *maxBuilds)
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("serve: shutdown: %v", err)
		}
	}
}
