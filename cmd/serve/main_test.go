package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"syscall"
	"testing"
	"time"
)

// TestServeUntilDoneDrainsInFlight verifies the graceful-drain path: a
// request already being served when shutdown starts must run to
// completion and reach the client intact.
func TestServeUntilDoneDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "drained-ok")
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveUntilDone(ctx, srv, ln, 5*time.Second) }()

	respCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			errCh <- err
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- string(b)
	}()

	// Once the handler is running, trigger shutdown while the request
	// is still in flight, then let the handler finish.
	<-entered
	cancel()
	time.Sleep(20 * time.Millisecond) // let Shutdown begin closing the listener
	close(release)

	select {
	case body := <-respCh:
		if body != "drained-ok" {
			t.Fatalf("in-flight response = %q, want drained-ok", body)
		}
	case err := <-errCh:
		t.Fatalf("in-flight request failed during drain: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not complete")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntilDone: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntilDone did not return after drain")
	}

	// New connections must be refused after shutdown.
	if _, err := http.Get("http://" + ln.Addr().String() + "/"); err == nil {
		t.Fatal("server accepted a connection after shutdown")
	}
}

// TestSignalContextTrapsSIGTERM verifies that SIGTERM — what container
// runtimes send — cancels the serve context, so it takes the
// graceful-drain path instead of killing the process.
func TestSignalContextTrapsSIGTERM(t *testing.T) {
	ctx, stop := signalContext(context.Background())
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the signal context")
	}
}
