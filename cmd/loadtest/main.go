// Command loadtest replays a deterministic request mix against the
// suite-serving stack and asserts committed latency and error budgets,
// so serving regressions fail CI instead of surfacing in production.
//
// By default it builds the full fleet in-process — a shard router in
// front of two workers, each with its own suite cache — and drives it
// through real HTTP (httptest listeners), exercising consistent-hash
// placement, forwarding and worker caches exactly as a deployed fleet
// would. With -url it targets a live deployment instead.
//
// The run has two passes: an unmeasured warmup that touches every
// distinct request once (building each worker's suites and memoizing
// figure payloads, the steady state a serving fleet lives in), then the
// measured replay whose latencies and error rate are checked against
// -p99 and -error-budget. The report is written as JSON with -out; the
// committed baseline lives in LOAD_10.json.
//
// Usage:
//
//	loadtest [-url URL] [-requests N] [-concurrency N] [-seed N]
//	         [-stack-workers N] [-p99 D] [-error-budget F] [-out FILE]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"pathsel/internal/experiments"
	"pathsel/internal/loadgen"
	"pathsel/internal/obs"
	"pathsel/internal/server"
)

// reportFile is the JSON document committed as the load-test baseline.
type reportFile struct {
	Target      string          `json:"target"`
	Seed        int64           `json:"mixSeed"`
	Requests    int             `json:"requests"`
	Concurrency int             `json:"concurrency"`
	Warmup      int             `json:"warmupRequests"`
	P99BudgetMs float64         `json:"p99BudgetMs"`
	ErrorBudget float64         `json:"errorBudget"`
	Pass        bool           `json:"pass"`
	Report      loadgen.Report `json:"report"`
}

func main() {
	url := flag.String("url", "", "target base URL (empty = in-process router + workers)")
	requests := flag.Int("requests", 400, "measured requests to replay")
	concurrency := flag.Int("concurrency", 8, "concurrent replay workers")
	seed := flag.Int64("seed", 1, "request-mix generator seed")
	stackWorkers := flag.Int("stack-workers", 2, "worker processes in the in-process fleet")
	p99 := flag.Duration("p99", 500*time.Millisecond, "p99 latency budget (0 disables)")
	errorBudget := flag.Float64("error-budget", 0.01, "max tolerated error rate (negative disables)")
	out := flag.String("out", "", "write the JSON report to this file")
	flag.Parse()

	ctx := context.Background()
	target := *url
	if target == "" {
		stack, cleanup := inProcessStack(*stackWorkers)
		defer cleanup()
		target = stack
	}

	mix := loadgen.DefaultMix()
	reqs, err := mix.Requests(*seed, *requests)
	if err != nil {
		log.Fatalf("loadtest: %v", err)
	}

	// Warmup: every distinct request once, so the measured pass sees
	// the fleet's steady state (suites built, figure payloads memoized)
	// rather than timing one-off cold builds.
	distinct := map[loadgen.Request]bool{}
	warm := []loadgen.Request{}
	for _, r := range reqs {
		if !distinct[r] {
			distinct[r] = true
			warm = append(warm, r)
		}
	}
	runner := &loadgen.Runner{BaseURL: target, Concurrency: *concurrency}
	log.Printf("warmup: %d distinct requests against %s", len(warm), target)
	warmStart := time.Now()
	for _, r := range runner.Run(ctx, warm) {
		if r.Err != nil || r.Status >= 500 {
			log.Fatalf("loadtest: warmup request %s failed: status %d err %v", r.Path, r.Status, r.Err)
		}
	}
	log.Printf("warmup done in %v; replaying %d requests at concurrency %d",
		time.Since(warmStart).Round(time.Millisecond), len(reqs), *concurrency)

	report := loadgen.Summarize(runner.Run(ctx, reqs))
	checkErr := report.Check(*p99, *errorBudget)

	doc := reportFile{
		Target:      targetLabel(*url, *stackWorkers),
		Seed:        *seed,
		Requests:    *requests,
		Concurrency: *concurrency,
		Warmup:      len(warm),
		P99BudgetMs: p99.Seconds() * 1e3,
		ErrorBudget: *errorBudget,
		Pass:        checkErr == nil,
		Report:      report,
	}
	log.Printf("p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms  errors %d/%d (%.4f)",
		report.P50Ms, report.P90Ms, report.P99Ms, report.MaxMs,
		report.Errors, report.Requests, report.ErrorRate)
	if *out != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatalf("loadtest: %v", err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("loadtest: %v", err)
		}
		log.Printf("report written to %s", *out)
	}
	if checkErr != nil {
		log.Fatalf("loadtest: FAIL: %v", checkErr)
	}
	log.Print("loadtest: PASS")
}

func targetLabel(url string, workers int) string {
	if url != "" {
		return url
	}
	return fmt.Sprintf("in-process router + %d workers", workers)
}

// inProcessStack assembles the real serving fleet inside this process:
// N workers, each a full handler over its own suite cache, fronted by
// the shard router — all listening on loopback httptest servers so the
// replay crosses real HTTP.
func inProcessStack(workers int) (baseURL string, cleanup func()) {
	if workers < 1 {
		workers = 1
	}
	defaults := experiments.Config{Seed: 1, Preset: experiments.Quick}
	var servers []*httptest.Server
	var backends []string
	for i := 0; i < workers; i++ {
		reg := obs.NewRegistry()
		cache := server.NewSuiteCache(8, 2, 0, experiments.BuildContext, server.NewMetrics(reg))
		srv := httptest.NewServer(server.NewHandler(cache, defaults, reg))
		servers = append(servers, srv)
		backends = append(backends, srv.URL)
	}
	rt := server.NewRouter(backends, defaults, 2, obs.NewRegistry())
	front := httptest.NewServer(rt)
	servers = append(servers, front)
	return front.URL, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}
