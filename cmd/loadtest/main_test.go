package main

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"pathsel/internal/loadgen"
)

// TestInProcessStackServes spins the real router + worker fleet and
// replays a tiny mix through it, end to end over HTTP.
func TestInProcessStackServes(t *testing.T) {
	base, cleanup := inProcessStack(2)
	defer cleanup()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("router healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router healthz status %d", resp.StatusCode)
	}

	mix := loadgen.Mix{Seeds: []int64{1}, Presets: []string{"quick"},
		Endpoints: []string{"/api/table1", "/api/figure/2"}}
	reqs, err := mix.Requests(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	runner := &loadgen.Runner{BaseURL: base, Concurrency: 2}
	results := runner.Run(context.Background(), reqs)
	rep := loadgen.Summarize(results)
	if rep.Errors != 0 {
		t.Fatalf("replay had %d errors: %+v", rep.Errors, rep.StatusCount)
	}
	if err := rep.Check(0, 0); err != nil {
		t.Errorf("zero error budget violated: %v", err)
	}
}

func TestTargetLabel(t *testing.T) {
	if got := targetLabel("http://x", 2); got != "http://x" {
		t.Errorf("explicit URL label %q", got)
	}
	if got := targetLabel("", 3); !strings.Contains(got, "3 workers") {
		t.Errorf("in-process label %q", got)
	}
}
