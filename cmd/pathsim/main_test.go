package main

import (
	"os"
	"path/filepath"
	"testing"

	"pathsel/internal/dataset"
	"pathsel/internal/trace"
)

func TestRunSavesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ds.gob.gz")
	err := run("1999", "na", 8, 1, 1.0, 60, "pairs", "traceroute", 10, out, "")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Paths) == 0 {
		t.Error("saved dataset has no paths")
	}
	c := ds.Characteristics()
	if c.Hosts < 2 || c.Measurements == 0 {
		t.Errorf("characteristics %+v", c)
	}
}

func TestRunTransfer(t *testing.T) {
	out := filepath.Join(t.TempDir(), "n2.gob.gz")
	if err := run("1995", "world", 8, 2, 1.0, 120, "pairs", "transfer", 0, out, ""); err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range ds.PairKeys() {
		if len(ds.Paths[k].Transfers) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("transfer campaign recorded no transfers")
	}
}

func TestRunEpisodes(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ep.gob.gz")
	if err := run("1999", "na", 6, 3, 0.5, 7200, "episodes", "traceroute", 0, out, ""); err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Episodes) == 0 {
		t.Error("episode campaign recorded no episodes")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.gob.gz")
	cases := []struct {
		era, region, sched, method string
	}{
		{"2024", "na", "pairs", "traceroute"},
		{"1999", "mars", "pairs", "traceroute"},
		{"1999", "na", "bogus", "traceroute"},
		{"1999", "na", "pairs", "bogus"},
	}
	for _, c := range cases {
		if err := run(c.era, c.region, 8, 1, 1, 60, c.sched, c.method, 0, out, ""); err == nil {
			t.Errorf("bad flags %+v accepted", c)
		}
	}
}

func TestRunWithTraceFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ds.gob.gz")
	tr := filepath.Join(dir, "traces.txt")
	if err := run("1999", "na", 6, 4, 0.5, 120, "pairs", "traceroute", 0, out, tr); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tr)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 50 {
		t.Fatalf("only %d trace records", len(recs))
	}
	for _, r := range recs[:10] {
		if len(r.Hops) < 2 || len(r.Samples) == 0 {
			t.Fatalf("thin record %+v", r)
		}
	}
}
