// Command pathsim generates a synthetic Internet and runs a measurement
// campaign over it, saving the resulting dataset for later analysis with
// the altpath tool.
//
// Usage:
//
//	pathsim [-era 1995|1999] [-region na|world] [-hosts N] [-seed N]
//	        [-days D] [-mean SECONDS] [-scheduler pairs|perserver|episodes]
//	        [-method traceroute|transfer] -o dataset.gob.gz
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pathsel/internal/bgp"
	"pathsel/internal/dataset"
	"pathsel/internal/forward"
	"pathsel/internal/geo"
	"pathsel/internal/igp"
	"pathsel/internal/measure"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/topology"
	"pathsel/internal/trace"
)

func main() {
	era := flag.String("era", "1999", "infrastructure era: 1995 or 1999")
	region := flag.String("region", "na", "host region: na or world")
	hosts := flag.Int("hosts", 20, "number of measurement hosts")
	seed := flag.Int64("seed", 1, "master seed")
	days := flag.Float64("days", 7, "campaign duration in days")
	mean := flag.Float64("mean", 60, "mean scheduling interval in seconds")
	scheduler := flag.String("scheduler", "pairs", "scheduler: pairs, perserver or episodes")
	method := flag.String("method", "traceroute", "instrument: traceroute or transfer")
	minMeas := flag.Int("minmeas", dataset.MinMeasurementsPerPath,
		"drop paths with fewer measurements (0 disables; the paper uses 30)")
	out := flag.String("o", "dataset.gob.gz", "output dataset file")
	traceFile := flag.String("trace", "", "also write textual traceroute records to this file")
	flag.Parse()

	if err := run(*era, *region, *hosts, *seed, *days, *mean, *scheduler, *method, *minMeas, *out, *traceFile); err != nil {
		fmt.Fprintln(os.Stderr, "pathsim:", err)
		os.Exit(1)
	}
}

func run(eraStr, regionStr string, hosts int, seed int64, days, mean float64,
	schedStr, methodStr string, minMeas int, out, traceFile string) error {
	var era topology.Era
	switch eraStr {
	case "1995":
		era = topology.Era1995
	case "1999":
		era = topology.Era1999
	default:
		return fmt.Errorf("unknown era %q", eraStr)
	}
	cfg := topology.DefaultConfig(era)
	cfg.Seed = seed
	cfg.NumHosts = hosts
	switch regionStr {
	case "na":
		cfg.Region = geo.NorthAmerica
	case "world":
		cfg.Region = geo.World
	default:
		return fmt.Errorf("unknown region %q", regionStr)
	}

	fmt.Println("generating topology...")
	top, err := topology.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Println(" ", top.Stats())

	fmt.Println("computing routes...")
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		return err
	}
	fwd := forward.New(top, g, table)

	netCfg := netsim.ConfigFor(era)
	netCfg.Seed = seed + 101
	net := netsim.New(top, netCfg)
	prbCfg := probe.DefaultConfig()
	prbCfg.Seed = seed + 201
	prb := probe.New(top, fwd, net, prbCfg)

	spec := measure.Spec{
		Name:            fmt.Sprintf("pathsim-%s-%s", eraStr, regionStr),
		MeanIntervalSec: mean,
		DurationSec:     days * 86400,
		RateLimit:       measure.FilterHosts,
		MinMeasurements: minMeas,
		Seed:            seed + 301,
	}
	for _, h := range top.Hosts {
		spec.Hosts = append(spec.Hosts, h.ID)
	}
	switch schedStr {
	case "pairs":
		spec.Scheduler = measure.ExponentialPairs
	case "perserver":
		spec.Scheduler = measure.PerServerUniform
	case "episodes":
		spec.Scheduler = measure.Episodes
		spec.MinMeasurements = 0
	default:
		return fmt.Errorf("unknown scheduler %q", schedStr)
	}
	switch methodStr {
	case "traceroute":
		spec.Method = measure.MethodTraceroute
	case "transfer":
		spec.Method = measure.MethodTransfer
		spec.MinMeasurements = 0
	default:
		return fmt.Errorf("unknown method %q", methodStr)
	}

	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		defer w.Flush()
		spec.Observer = func(res probe.Result) {
			if err := trace.Write(w, top, net, res); err != nil {
				fmt.Fprintln(os.Stderr, "pathsim: trace write:", err)
			}
		}
	}

	fmt.Printf("running %s campaign: %.1f days, mean interval %.0fs...\n", methodStr, days, mean)
	ds, err := measure.Run(top, prb, spec)
	if err != nil {
		return err
	}
	c := ds.Characteristics()
	fmt.Printf("  %d hosts, %d measurements, %.0f%% of paths covered\n",
		c.Hosts, c.Measurements, c.PercentCovered)
	if len(ds.Paths) == 0 && spec.MinMeasurements > 0 {
		pairs := float64(len(spec.Hosts) * (len(spec.Hosts) - 1))
		perPair := days * 86400 / mean / pairs
		fmt.Printf("  warning: every path fell below -minmeas %d (~%.0f measurements per pair);\n"+
			"  lengthen -days, shrink -mean, or lower -minmeas\n", spec.MinMeasurements, perPair)
	}

	if err := ds.Save(out); err != nil {
		return err
	}
	fmt.Println("saved", out)
	return nil
}
