package main

import (
	"testing"

	"pathsel/internal/topology"
)

func hostNames(t *testing.T) (string, string) {
	t.Helper()
	top, err := topology.Generate(topology.DefaultConfig(topology.Era1999))
	if err != nil {
		t.Fatal(err)
	}
	return top.Hosts[0].Name, top.Hosts[3].Name
}

func TestRunListsHosts(t *testing.T) {
	if err := run("1999", 1, 13, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceroute(t *testing.T) {
	a, b := hostNames(t)
	if err := run("1999", 1, 13, []string{a, b}); err != nil {
		t.Fatal(err)
	}
}

func TestRun1995(t *testing.T) {
	if err := run("1995", 2, 3, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	a, b := hostNames(t)
	if err := run("1823", 1, 13, []string{a, b}); err == nil {
		t.Error("bad era accepted")
	}
	if err := run("1999", 1, 13, []string{a}); err == nil {
		t.Error("single host accepted")
	}
	if err := run("1999", 1, 13, []string{"nope", b}); err == nil {
		t.Error("unknown src accepted")
	}
	if err := run("1999", 1, 13, []string{a, "nope"}); err == nil {
		t.Error("unknown dst accepted")
	}
}
