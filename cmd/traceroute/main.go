// Command traceroute generates a synthetic Internet and runs a simulated
// traceroute between two of its measurement hosts, printing the
// router-level forward path with per-hop AS, location, and cumulative
// delay — a direct view of the policy-routed default paths whose quality
// the rest of the toolchain analyzes.
//
// Usage:
//
//	traceroute [-era 1995|1999] [-seed N] [-hour H] [src dst]
//
// Without arguments it lists the available hosts.
package main

import (
	"flag"
	"fmt"
	"os"

	"pathsel/internal/bgp"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/topology"
)

func main() {
	eraStr := flag.String("era", "1999", "infrastructure era: 1995 or 1999")
	seed := flag.Int64("seed", 1, "topology seed")
	hour := flag.Float64("hour", 13, "simulated time of day (PST hours, Wednesday)")
	flag.Parse()

	if err := run(*eraStr, *seed, *hour, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "traceroute:", err)
		os.Exit(1)
	}
}

func run(eraStr string, seed int64, hour float64, args []string) error {
	var era topology.Era
	switch eraStr {
	case "1995":
		era = topology.Era1995
	case "1999":
		era = topology.Era1999
	default:
		return fmt.Errorf("unknown era %q", eraStr)
	}
	cfg := topology.DefaultConfig(era)
	cfg.Seed = seed
	top, err := topology.Generate(cfg)
	if err != nil {
		return err
	}

	if len(args) == 0 {
		fmt.Println("hosts:")
		for _, h := range top.Hosts {
			fmt.Printf("  %-16s AS%-5d %v\n", h.Name, h.AS, h.Loc)
		}
		fmt.Println("\nusage: traceroute [flags] <src-host> <dst-host>")
		return nil
	}
	if len(args) != 2 {
		return fmt.Errorf("need exactly two host names, have %d", len(args))
	}
	src := top.HostByName(args[0])
	dst := top.HostByName(args[1])
	if src == nil {
		return fmt.Errorf("unknown host %q (run without arguments to list)", args[0])
	}
	if dst == nil {
		return fmt.Errorf("unknown host %q (run without arguments to list)", args[1])
	}

	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		return err
	}
	fwd := forward.New(top, g, table)
	netCfg := netsim.ConfigFor(era)
	netCfg.Seed = seed + 101
	net := netsim.New(top, netCfg)

	path, err := fwd.HostPath(src.ID, dst.ID)
	if err != nil {
		return err
	}
	at := netsim.Time(2*86400 + hour*3600) // Wednesday

	fmt.Printf("traceroute %s -> %s (%d hops, Wednesday %02.0f:00 PST)\n",
		src.Name, dst.Name, path.Hops(), hour)
	cum := 0.0
	for i, r := range path.Routers {
		router := top.Router(r)
		if i > 0 {
			lid := path.Links[i-1]
			cum += net.LinkDelayMs(lid, at)
		}
		marker := " "
		if router.Border {
			marker = "*"
		}
		fmt.Printf("%3d%s  router%-4d AS%-5d %v  %7.2f ms  util %.2f\n",
			i+1, marker, r, router.AS, router.Loc, cum, hopUtil(net, path, i, at))
	}
	fmt.Printf("\nAS path: %v\n", path.ASPath(top))

	// Three echo samples like the real tool.
	prb := probe.New(top, fwd, net, probe.Config{Seed: seed + 201, TransferPackets: 100})
	res, err := prb.Traceroute(src.ID, dst.ID, at)
	if err != nil {
		return err
	}
	fmt.Print("echo samples:")
	for _, s := range res.Samples {
		if s.Lost {
			fmt.Print("  *")
		} else {
			fmt.Printf("  %.1f ms", s.RTTMs)
		}
	}
	fmt.Println()
	return nil
}

// hopUtil returns the utilization of the link leading into hop i (0 for
// the first hop).
func hopUtil(net *netsim.Network, path forward.Path, i int, at netsim.Time) float64 {
	if i == 0 {
		return 0
	}
	return net.Utilization(path.Links[i-1], at)
}
