// Command altpath runs the paper's alternate-path analysis over a
// dataset: for every measured host pair it finds the best synthetic
// alternate path for the chosen metric and reports the improvement CDF,
// the 95% confidence verdict table, and an ASCII plot.
//
// Usage:
//
//	altpath [-metric rtt|loss|prop|bw] [-maxvia N] [-k N] [-workers N] [-plot] [-episodes] dataset.gob.gz
//	altpath -suite UW3 [-preset quick|full|scale] [-seed N] [-metric ...]
//
// The first form loads a dataset saved by pathsim; the second builds
// the named Table 1 dataset (UW1, UW3, UW4-A, UW4-B, D2, D2-NA, N2,
// N2-NA) on the fly through the experiments suite, so any paper dataset
// can be analyzed under any seed without an intermediate file. The bw
// metric needs a dataset with TCP transfer measurements (pathsim
// -method transfer, or the N2 suite datasets); -episodes needs one
// collected with the episodes scheduler (UW4-A).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pathsel/internal/core"
	"pathsel/internal/dataset"
	"pathsel/internal/experiments"
	"pathsel/internal/pathset"
	"pathsel/internal/report"
	"pathsel/internal/stats"
	"pathsel/internal/tcpmodel"
)

func main() {
	metricStr := flag.String("metric", "rtt", "metric: rtt, loss, prop or bw")
	maxVia := flag.Int("maxvia", 0, "max intermediate hosts per alternate (0 = unlimited)")
	k := flag.Int("k", 1, "alternate paths per pair; >1 adds the path-set report")
	workers := flag.Int("workers", 0, "analysis worker goroutines (0 = one per CPU, 1 = sequential)")
	plot := flag.Bool("plot", false, "draw an ASCII CDF")
	episodes := flag.Bool("episodes", false, "run the simultaneous-episode analysis instead")
	suiteName := flag.String("suite", "", "build this Table 1 dataset instead of loading a file: "+strings.Join(experiments.DatasetNames(), ", "))
	preset := flag.String("preset", "quick", "campaign scale for -suite: quick, full or scale")
	seed := flag.Int64("seed", 1, "suite seed for -suite")
	flag.Parse()
	if (*suiteName == "") == (flag.NArg() != 1) {
		fmt.Fprintln(os.Stderr, "usage: altpath [-metric rtt|loss|prop|bw] [-maxvia N] [-workers N] [-plot] [-episodes] (dataset.gob.gz | -suite NAME [-preset quick|full|scale] [-seed N])")
		os.Exit(2)
	}
	ds, err := loadDataset(*suiteName, *preset, *seed, *workers, flag.Arg(0))
	if err == nil {
		err = run(ds, *metricStr, *maxVia, *k, *workers, *plot, *episodes)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "altpath:", err)
		os.Exit(1)
	}
}

// loadDataset resolves the dataset from either a saved file or a named
// suite dataset built on demand.
func loadDataset(suiteName, preset string, seed int64, workers int, path string) (*dataset.Dataset, error) {
	if suiteName == "" {
		return dataset.Load(path)
	}
	cfg := experiments.Config{Seed: seed, Concurrency: workers}
	var err error
	if cfg.Preset, err = experiments.ParsePreset(preset); err != nil {
		return nil, err
	}
	fmt.Printf("building %s suite (seed %d)...\n", cfg.Preset, cfg.Seed)
	s, err := experiments.Build(cfg)
	if err != nil {
		return nil, err
	}
	ds, ok := s.Dataset(suiteName)
	if !ok {
		return nil, fmt.Errorf("unknown suite dataset %q (want one of %s)", suiteName, strings.Join(experiments.DatasetNames(), ", "))
	}
	return ds, nil
}

func run(ds *dataset.Dataset, metricStr string, maxVia, k, workers int, plot, episodes bool) error {
	c := ds.Characteristics()
	fmt.Printf("dataset %s: %d hosts, %d measurements, %.0f%% coverage\n",
		c.Name, c.Hosts, c.Measurements, c.PercentCovered)
	analyzer := core.NewAnalyzer(ds).WithConcurrency(workers)

	if episodes {
		return runEpisodes(analyzer)
	}
	if metricStr == "bw" {
		return runBandwidth(analyzer)
	}

	var metric core.Metric
	switch metricStr {
	case "rtt":
		metric = core.MetricRTT
	case "loss":
		metric = core.MetricLoss
	case "prop":
		metric = core.MetricPropDelay
	default:
		return fmt.Errorf("unknown metric %q", metricStr)
	}
	rs, err := analyzer.Query(core.QuerySpec{Metric: metric, MaxVia: maxVia, K: k, Annotate: k > 1})
	if err != nil {
		return err
	}
	results := rs.PairResults()
	if len(results) == 0 {
		return fmt.Errorf("no comparable pairs in dataset")
	}
	cdf := core.ImprovementCDF(results)
	fmt.Printf("\n%s improvement (default - best alternate): %s\n", metric, report.CDFSummary(cdf))

	verdicts := core.ClassifyVerdicts(results, 0.95)
	b, i, w, z := verdicts.Percent()
	fmt.Printf("at 95%% confidence: better %.0f%%, indeterminate %.0f%%, worse %.0f%%", b, i, w)
	if verdicts.BothZero > 0 {
		fmt.Printf(", both zero %.0f%%", z)
	}
	fmt.Println()

	// The five best wins, with their relay hosts.
	top := results
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].Improvement() > top[i].Improvement() {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	n := 5
	if n > len(top) {
		n = len(top)
	}
	fmt.Println("\nlargest improvements:")
	for _, r := range top[:n] {
		fmt.Printf("  %v: %.3g -> %.3g via %v\n", r.Key, r.DefaultValue, r.AltValue, r.Via)
	}

	if k > 1 {
		reportPathSets(rs)
	}

	if plot {
		lo, _ := cdf.Quantile(0.02)
		hi, _ := cdf.Quantile(0.98)
		if hi > lo {
			fmt.Println()
			fmt.Print(report.AsciiCDF(cdf, lo, hi, 12, 64))
		}
	}
	return nil
}

// reportPathSets summarizes a k>1 query: how the best-of-k improvement
// grows with k, and how AS-disjoint from the default the sets get.
func reportPathSets(rs core.ResultSet) {
	k := rs.Spec.K
	fmt.Printf("\npath sets (k=%d):\n", k)
	for n := 1; n <= k; n++ {
		var acc stats.Accum
		covered := 0
		for _, p := range rs.Pairs {
			set := p.Alternates
			if set.Len() > n {
				set.Paths = set.Paths[:n]
			}
			bestN := p.Default.Value
			for _, alt := range set.Paths {
				if alt.Value < bestN {
					bestN = alt.Value
				}
			}
			acc.Add(p.Default.Value - bestN)
			if set.MaxDisjointness(pathset.LevelAS, p.Default) >= 1 {
				covered++
			}
		}
		fmt.Printf("  best of %d: mean improvement %.3g, AS-disjoint alternate for %.0f%% of pairs\n",
			n, acc.Mean(), 100*float64(covered)/float64(len(rs.Pairs)))
	}
}

// runBandwidth runs the one-hop Mathis-model bandwidth comparison under
// both loss-composition modes.
func runBandwidth(analyzer *core.Analyzer) error {
	model := tcpmodel.Default()
	for _, mode := range []core.BandwidthMode{core.Pessimistic, core.Optimistic} {
		rs, err := analyzer.Query(core.QuerySpec{Bandwidth: &core.BandwidthQuery{Model: model, Mode: mode}})
		if err != nil {
			return err
		}
		results := rs.BandwidthResults()
		if len(results) == 0 {
			return fmt.Errorf("no transfer measurements in dataset (collect with -method transfer)")
		}
		vals := make([]float64, len(results))
		better := 0
		for i, r := range results {
			vals[i] = r.Improvement()
			if r.Improvement() > 0 {
				better++
			}
		}
		cdf := stats.NewCDF(vals)
		fmt.Printf("\nbandwidth improvement, %s composition: %s\n", mode, report.CDFSummary(cdf))
		fmt.Printf("  %d of %d pairs have a better-bandwidth relay (%.0f%%)\n",
			better, len(results), 100*float64(better)/float64(len(results)))
	}
	return nil
}

// runEpisodes runs the simultaneous-measurement analysis.
func runEpisodes(analyzer *core.Analyzer) error {
	res, err := analyzer.AnalyzeEpisodes()
	if err != nil {
		return err
	}
	pa := stats.NewCDF(res.PairAveraged)
	raw := stats.NewCDF(res.Unaveraged)
	fmt.Printf("\npair-averaged episode improvement: %s\n", report.CDFSummary(pa))
	fmt.Printf("unaveraged episode improvement:    %s\n", report.CDFSummary(raw))
	if len(res.RelayChurn) > 0 {
		sum := 0.0
		for _, c := range res.RelayChurn {
			sum += c
		}
		fmt.Printf("best-relay churn between consecutive episodes: %.0f%% mean\n",
			100*sum/float64(len(res.RelayChurn)))
	}
	return nil
}
