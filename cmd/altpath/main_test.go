package main

import (
	"path/filepath"
	"testing"

	"pathsel/internal/dataset"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// writeTestDataset builds a small hand-made dataset on disk.
func writeTestDataset(t *testing.T) string {
	t.Helper()
	ds := dataset.New("cli-test", []topology.HostID{0, 1, 2})
	add := func(src, dst int, rtt float64, n int) {
		k := dataset.PairKey{Src: topology.HostID(src), Dst: topology.HostID(dst)}
		for i := 0; i < n; i++ {
			ds.RecordEcho(k, netsim.Time(i), []float64{rtt + float64(i%5)}, []bool{false}, nil, 1)
		}
	}
	add(0, 1, 100, 40)
	add(0, 2, 20, 40)
	add(2, 1, 20, 40)
	path := filepath.Join(t.TempDir(), "ds.gob.gz")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// runFile loads a saved dataset and runs the analysis, mirroring the
// CLI's file mode.
func runFile(path, metric string, maxVia, workers int, plot, episodes bool) error {
	ds, err := loadDataset("", "", 0, workers, path)
	if err != nil {
		return err
	}
	return run(ds, metric, maxVia, 1, workers, plot, episodes)
}

func TestRunMetrics(t *testing.T) {
	path := writeTestDataset(t)
	for _, metric := range []string{"rtt", "loss", "prop"} {
		if err := runFile(path, metric, 0, 0, true, false); err != nil {
			t.Errorf("metric %s: %v", metric, err)
		}
	}
}

func TestRunOneHop(t *testing.T) {
	path := writeTestDataset(t)
	if err := runFile(path, "rtt", 1, 0, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunPathSets(t *testing.T) {
	path := writeTestDataset(t)
	ds, err := loadDataset("", "", 0, 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(ds, "rtt", 0, 3, 0, false, false); err != nil {
		t.Fatalf("k=3 run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestDataset(t)
	if err := runFile(path, "bogus", 0, 0, false, false); err == nil {
		t.Error("unknown metric accepted")
	}
	if err := runFile(filepath.Join(t.TempDir(), "missing.gob.gz"), "rtt", 0, 0, false, false); err == nil {
		t.Error("missing file accepted")
	}
	// A dataset with no comparable pairs must error cleanly.
	empty := dataset.New("empty", []topology.HostID{0, 1})
	p := filepath.Join(t.TempDir(), "empty.gob.gz")
	if err := empty.Save(p); err != nil {
		t.Fatal(err)
	}
	if err := runFile(p, "rtt", 0, 0, false, false); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestRunBandwidthAndEpisodes(t *testing.T) {
	// Bandwidth needs transfers; episodes need episode data.
	ds := dataset.New("bw", []topology.HostID{0, 1, 2})
	for i := 0; i < 3; i++ {
		ds.RecordTransfer(dataset.PairKey{Src: 0, Dst: 1},
			dataset.TransferSample{MeanRTTMs: 200, LossRate: 0.03, Packets: 100})
		ds.RecordTransfer(dataset.PairKey{Src: 0, Dst: 2},
			dataset.TransferSample{MeanRTTMs: 50, LossRate: 0.01, Packets: 100})
		ds.RecordTransfer(dataset.PairKey{Src: 2, Dst: 1},
			dataset.TransferSample{MeanRTTMs: 50, LossRate: 0.01, Packets: 100})
	}
	ds.AddEpisode(&dataset.Episode{At: 0, RTTMs: map[dataset.PairKey]float64{
		{Src: 0, Dst: 1}: 100, {Src: 0, Dst: 2}: 20, {Src: 2, Dst: 1}: 20,
	}})
	p := filepath.Join(t.TempDir(), "bw.gob.gz")
	if err := ds.Save(p); err != nil {
		t.Fatal(err)
	}
	if err := runFile(p, "bw", 0, 0, false, false); err != nil {
		t.Errorf("bandwidth run: %v", err)
	}
	if err := runFile(p, "rtt", 0, 0, false, true); err != nil {
		t.Errorf("episodes run: %v", err)
	}
	// A dataset without transfers fails the bw metric cleanly.
	empty := dataset.New("no-transfers", []topology.HostID{0, 1})
	empty.RecordEcho(dataset.PairKey{Src: 0, Dst: 1}, 0, []float64{1}, []bool{false}, nil, 1)
	p2 := filepath.Join(t.TempDir(), "nt.gob.gz")
	if err := empty.Save(p2); err != nil {
		t.Fatal(err)
	}
	if err := runFile(p2, "bw", 0, 0, false, false); err == nil {
		t.Error("bw on transfer-less dataset should error")
	}
}
