GO ?= go

# External tools, pinned so a local `make check-all` runs exactly what
# CI runs. `go run mod@version` fetches on first use, so these targets
# need network access; everything in `check` is offline-safe.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK := golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: build test vet lint lint-json race bench bench-json bench-scale serve-load fuzz-smoke staticcheck vuln check check-all

build:
	$(GO) build ./...

# -shuffle=on randomizes test order per run to surface test-order
# dependence; the seed is printed on failure for reproduction.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# The repo's own analyzer suite, nine checkers over one shared
# type-checked load: determinism (detrand, and detflow through the
# call graph), cancellation (ctxflow, ctxleak), hot-path allocation
# (hotalloc), deprecated-API migration (deprecated, with -fix),
# metrics (obsmetric), map iteration (maporder) and float equality
# (floateq). See internal/analysis and DESIGN.md §12.
lint:
	$(GO) run ./cmd/repolint ./...

# Machine-readable lint report, as uploaded by CI.
lint-json:
	$(GO) run ./cmd/repolint -json ./... > repolint.json

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench 'BestAlternates|GreedyRemoveTop' -benchmem -run '^$$' ./internal/core/

# Machine-readable baseline of the root benchmark harness: one
# iteration of every exhibit (enough for a committed reference point;
# -benchtime=1x keeps the expensive ablations bounded), converted to
# JSON by cmd/benchjson. Override the PR number (make bench-json N=9)
# or the whole filename (BENCH_OUT=baseline.json) instead of editing
# this file each PR.
N ?= 10
BENCH_OUT ?= BENCH_$(N).json
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x -timeout 30m . | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# Planet-scale smoke: build the 10k-AS / 100k-host suite end to end
# under a hard memory ceiling and wall-clock timeout. The test itself
# asserts the substrate size, the <8 GB peak RSS budget, and identical
# analysis output across concurrency levels.
bench-scale:
	PATHSEL_SCALE_SMOKE=1 GOMEMLIMIT=7GiB $(GO) test -run TestScaleSmoke -v -timeout 10m ./internal/experiments/

# Serving-stack load test: assemble the shard router and two workers
# in-process, replay the committed request mix over real HTTP, and
# assert the p99 latency and error budgets. Writes the committed
# baseline (make serve-load LOAD_OUT=LOAD_10.json regenerates it).
LOAD_OUT ?= LOAD_$(N).json
serve-load:
	$(GO) run ./cmd/loadtest -out $(LOAD_OUT)

# Short fuzz runs of the parsers that face external input, plus the
# packet data plane's invariant fuzzer; CI runs the same budgets.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=15s -run '^$$' ./internal/trace
	$(GO) test -fuzz=FuzzParsePreset -fuzztime=15s -run '^$$' ./internal/experiments
	$(GO) test -fuzz=FuzzDataPlane -fuzztime=15s -run '^$$' ./internal/packetnet
	$(GO) test -fuzz=FuzzDecode -fuzztime=15s -run '^$$' ./internal/snapshot

staticcheck:
	$(GO) run $(STATICCHECK) ./...

vuln:
	$(GO) run $(GOVULNCHECK) ./...

# Offline-safe gate: what every PR must pass locally.
check: vet lint test race

# check plus the network-fetching tools; matches the full CI run.
check-all: check staticcheck vuln fuzz-smoke
