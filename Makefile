GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The analysis engine is the only concurrent code; run it and its
# drivers under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/experiments/...

bench:
	$(GO) test -bench 'BestAlternates|GreedyRemoveTop' -benchmem -run '^$$' ./internal/core/

check: vet test race
