// Overlay: a Detour/RON-style overlay router built on the library — the
// systems the paper's findings directly inspired.
//
// A set of overlay nodes (the measurement hosts) probe each other
// periodically. For every pair, the overlay routes each "connection"
// either directly or through the one-hop relay that the latest probes
// say is fastest. We then compare the latency the overlay achieved
// against always taking the default Internet path, over a simulated
// business day.
//
// Run with: go run ./examples/overlay
package main

import (
	"fmt"
	"log"
	"math"

	"pathsel/internal/bgp"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/topology"
)

// probeIntervalSec is how often the overlay refreshes its pairwise
// measurements (RON used ~10s probes; we are coarser to keep the demo
// fast).
const probeIntervalSec = 300

func main() {
	topCfg := topology.DefaultConfig(topology.Era1999)
	topCfg.NumHosts = 10
	top, err := topology.Generate(topCfg)
	if err != nil {
		log.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		log.Fatal(err)
	}
	fwd := forward.New(top, g, table)
	net := netsim.New(top, netsim.ConfigFor(topology.Era1999))

	hosts := top.Hosts
	n := len(hosts)
	fmt.Printf("overlay of %d nodes; probing every %d s across a business day\n\n", n, probeIntervalSec)

	// Precompute forwarding paths between every host pair (the physical
	// substrate does not change during the day).
	paths := make([][]forward.Path, n)
	for i := range paths {
		paths[i] = make([]forward.Path, n)
		for j := range paths[i] {
			if i == j {
				continue
			}
			p, err := fwd.HostPath(hosts[i].ID, hosts[j].ID)
			if err != nil {
				log.Fatal(err)
			}
			paths[i][j] = p
		}
	}
	// oneWay returns the expected one-way delay of the i->j default path
	// at time t.
	oneWay := func(i, j int, t netsim.Time) float64 {
		st, err := net.EvalHostPath(hosts[i].ID, hosts[j].ID, paths[i][j].Links, t)
		if err != nil {
			log.Fatal(err)
		}
		return st.DelayMs
	}

	// Simulate a Wednesday. Every probe interval the overlay measures
	// all pairs and picks, per pair, the best relay for the *next*
	// interval — decisions use stale data exactly as a real overlay's
	// would. We score the choices against the fresh network state.
	start := netsim.Time(2 * 86400)
	var overlaySum, directSum float64
	var wins, picks, relayed int
	relay := make([][]int, n) // chosen relay per pair, -1 = direct
	for i := range relay {
		relay[i] = make([]int, n)
		for j := range relay[i] {
			relay[i][j] = -1
		}
	}
	for step := 0; step < 86400/probeIntervalSec; step++ {
		t := start + netsim.Time(step*probeIntervalSec)
		// Score the previous decisions against the current state.
		if step > 0 {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					direct := oneWay(i, j, t)
					chosen := direct
					if r := relay[i][j]; r >= 0 {
						chosen = oneWay(i, r, t) + oneWay(r, j, t)
						relayed++
					}
					overlaySum += chosen
					directSum += direct
					picks++
					if chosen < direct {
						wins++
					}
				}
			}
		}
		// Measure and re-decide for the next interval.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				direct := oneWay(i, j, t)
				best, bestVia := direct, -1
				for r := 0; r < n; r++ {
					if r == i || r == j {
						continue
					}
					if d := oneWay(i, r, t) + oneWay(r, j, t); d < best {
						best, bestVia = d, r
					}
				}
				relay[i][j] = bestVia
			}
		}
	}

	fmt.Printf("connection-intervals scored:  %d\n", picks)
	fmt.Printf("overlay chose a relay:        %.0f%%\n", 100*float64(relayed)/float64(picks))
	fmt.Printf("overlay beat the default:     %.0f%%\n", 100*float64(wins)/float64(picks))
	fmt.Printf("mean one-way latency:         %.1f ms overlay vs %.1f ms default (%.0f%% saved)\n",
		overlaySum/float64(picks), directSum/float64(picks),
		100*(1-overlaySum/math.Max(directSum, 1e-9)))

	_ = table // routing state retained for clarity of the pipeline
}
