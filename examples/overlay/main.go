// Overlay: a Detour/RON-style overlay router built on the library — the
// systems the paper's findings directly inspired.
//
// This is a thin driver over internal/overlay: a set of overlay nodes
// probe each other on a fixed per-node budget, maintain EWMA latency
// and loss estimates per virtual link, and route each pair either
// directly or through the one-hop relay the estimates favor (with
// hysteresis, so routes do not flap). The evaluation harness replays a
// simulated business day and scores the overlay's choices against the
// always-direct default and the offline optimum from ground truth.
//
// Run with: go run ./examples/overlay
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"pathsel/internal/bgp"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/netsim"
	"pathsel/internal/overlay"
	"pathsel/internal/topology"
)

func main() {
	topCfg := topology.DefaultConfig(topology.Era1999)
	topCfg.NumHosts = 10
	top, err := topology.Generate(topCfg)
	if err != nil {
		log.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		log.Fatal(err)
	}
	fwd := forward.New(top, g, table)
	net := netsim.New(top, netsim.ConfigFor(topology.Era1999))

	nodes := make([]topology.HostID, len(top.Hosts))
	for i, h := range top.Hosts {
		nodes[i] = h.ID
	}

	cfg := overlay.DefaultConfig()
	cfg.ProbesPerSec = 2

	// Simulate a Wednesday. The substrate's routes are static (a
	// forward.Cache), so all dynamics come from the network model's
	// diurnal load and link flaps.
	cond := overlay.Conditions{
		Paths: forward.NewCache(fwd),
		Net:   net,
		Nodes: nodes,
		Start: netsim.Time(2 * 86400),
		End:   netsim.Time(3 * 86400),
	}
	fmt.Printf("overlay of %d nodes; %.0f probes/s per node across a business day\n\n",
		len(nodes), cfg.ProbesPerSec)

	res, err := overlay.Evaluate(context.Background(), cond, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pairs in the mesh:            %d\n", res.Pairs)
	fmt.Printf("connection-intervals scored:  %d\n", res.ScoredTicks*res.Pairs)
	fmt.Printf("probes sent:                  %d (switches %d, outages detected %d)\n",
		res.ProbesSent, res.Switches, res.OutagesDetected)
	fmt.Printf("overlay chose a relay:        %.0f%%\n", 100*res.RelayShare)
	fmt.Printf("availability:                 %.3f%% overlay vs %.3f%% default (optimal %.3f%%)\n",
		100*res.Overlay.Availability, 100*res.Default.Availability, 100*res.Optimal.Availability)
	fmt.Printf("mean round-trip latency:      %.1f ms overlay vs %.1f ms default (%.0f%% saved; optimal %.1f ms)\n",
		res.Overlay.MeanRTTMs, res.Default.MeanRTTMs,
		100*(1-res.Overlay.MeanRTTMs/math.Max(res.Default.MeanRTTMs, 1e-9)),
		res.Optimal.MeanRTTMs)
	if len(res.Reactions) > 0 {
		sum := 0.0
		for _, r := range res.Reactions {
			sum += r
		}
		fmt.Printf("failover reactions:           %d, mean %.0f s\n",
			len(res.Reactions), sum/float64(len(res.Reactions)))
	}

	_ = table // routing state retained for clarity of the pipeline
}
