// Quickstart: build a synthetic Internet, measure it the way the paper
// did, and ask the paper's question — is there an alternate path through
// another host that beats the default route?
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pathsel/internal/bgp"
	"pathsel/internal/core"
	"pathsel/internal/dataset"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/measure"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/topology"
)

func main() {
	// 1. Generate a late-90s Internet: tier-1 backbones, regional
	//    transit providers, stub edge networks, and measurement hosts.
	topCfg := topology.DefaultConfig(topology.Era1999)
	topCfg.NumHosts = 12
	top, err := topology.Generate(topCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("topology:", top.Stats())

	// 2. Converge routing: intra-AS shortest paths plus BGP-style
	//    policy routing (customer > peer > provider, valley-free
	//    export, hot-potato egress).
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		log.Fatal(err)
	}
	fwd := forward.New(top, g, table)

	// 3. Put dynamic load on the network and create a prober.
	net := netsim.New(top, netsim.ConfigFor(topology.Era1999))
	prb := probe.New(top, fwd, net, probe.DefaultConfig())

	// 4. Run a two-day measurement campaign: random host pairs,
	//    exponentially spaced traceroutes, as in the paper's UW3.
	var hosts []topology.HostID
	for _, h := range top.Hosts {
		hosts = append(hosts, h.ID)
	}
	ds, err := measure.Run(top, prb, measure.Spec{
		Name:            "quickstart",
		Hosts:           hosts,
		Method:          measure.MethodTraceroute,
		Scheduler:       measure.ExponentialPairs,
		MeanIntervalSec: 45,
		DurationSec:     2 * 86400,
		RateLimit:       measure.FilterHosts,
		MinMeasurements: dataset.MinMeasurementsPerPath,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := ds.Characteristics()
	fmt.Printf("measured: %d hosts, %d traceroutes, %.0f%% of paths\n",
		c.Hosts, c.Measurements, c.PercentCovered)

	// 5. The paper's question: for each measured pair, is there a
	//    better synthetic alternate path through other hosts?
	rs, err := core.NewAnalyzer(ds).Query(core.QuerySpec{Metric: core.MetricRTT})
	if err != nil {
		log.Fatal(err)
	}
	results := rs.PairResults()
	cdf := core.ImprovementCDF(results)
	fmt.Printf("\npairs compared: %d\n", cdf.N())
	fmt.Printf("alternate beats default:            %.0f%%\n", 100*cdf.FractionAbove(0))
	fmt.Printf("alternate wins by 20 ms or more:    %.0f%%\n", 100*cdf.FractionAbove(20))

	// Show the single biggest win, with the relay that provides it.
	var best core.PairResult
	for _, r := range results {
		if r.Improvement() > best.Improvement() {
			best = r
		}
	}
	src := top.Host(best.Key.Src)
	dst := top.Host(best.Key.Dst)
	fmt.Printf("\nbiggest win: %s -> %s\n", src.Name, dst.Name)
	fmt.Printf("  default    %.1f ms\n", best.DefaultValue)
	fmt.Printf("  alternate  %.1f ms via", best.AltValue)
	for _, via := range best.Via {
		fmt.Printf(" %s", top.Host(via).Name)
	}
	fmt.Println()
}
