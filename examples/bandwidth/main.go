// Bandwidth: the paper's Section 5 bandwidth analysis as a standalone
// study, with a twist the paper could not run — after the Mathis model
// picks the best relay for each pair, a simulated TCP Reno flow checks
// that the predicted ranking holds for an actual transfer.
//
// Run with: go run ./examples/bandwidth
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathsel/internal/bgp"
	"pathsel/internal/core"
	"pathsel/internal/dataset"
	"pathsel/internal/forward"
	"pathsel/internal/geo"
	"pathsel/internal/igp"
	"pathsel/internal/measure"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/tcpmodel"
	"pathsel/internal/tcpsim"
	"pathsel/internal/topology"
)

func main() {
	// A 1995 world topology: the N2 era of slow, congested transit.
	topCfg := topology.DefaultConfig(topology.Era1995)
	topCfg.Region = geo.World
	topCfg.NumHosts = 14
	top, err := topology.Generate(topCfg)
	if err != nil {
		log.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		log.Fatal(err)
	}
	fwd := forward.New(top, g, table)
	net := netsim.New(top, netsim.ConfigFor(topology.Era1995))
	prb := probe.New(top, fwd, net, probe.DefaultConfig())

	var hosts []topology.HostID
	for _, h := range top.Hosts {
		hosts = append(hosts, h.ID)
	}
	fmt.Println("collecting npd-style TCP transfer measurements (two weeks)...")
	ds, err := measure.Run(top, prb, measure.Spec{
		Name:            "bandwidth",
		Hosts:           hosts,
		Method:          measure.MethodTransfer,
		Scheduler:       measure.ExponentialPairs,
		MeanIntervalSec: 250,
		DurationSec:     14 * 86400,
		Seed:            5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d transfers measured\n\n", ds.Characteristics().Measurements)

	model := tcpmodel.Default()
	analyzer := core.NewAnalyzer(ds)
	pessRS, err := analyzer.Query(core.QuerySpec{Bandwidth: &core.BandwidthQuery{Model: model, Mode: core.Pessimistic}})
	if err != nil {
		log.Fatal(err)
	}
	optRS, err := analyzer.Query(core.QuerySpec{Bandwidth: &core.BandwidthQuery{Model: model, Mode: core.Optimistic}})
	if err != nil {
		log.Fatal(err)
	}
	pess, opt := pessRS.BandwidthResults(), optRS.BandwidthResults()
	betterP, betterO := 0, 0
	for _, r := range pess {
		if r.Improvement() > 0 {
			betterP++
		}
	}
	for _, r := range opt {
		if r.Improvement() > 0 {
			betterO++
		}
	}
	fmt.Printf("pairs with a better-bandwidth relay (Mathis model):\n")
	fmt.Printf("  pessimistic loss composition: %d of %d (%.0f%%)\n",
		betterP, len(pess), 100*float64(betterP)/float64(len(pess)))
	fmt.Printf("  optimistic loss composition:  %d of %d (%.0f%%)\n",
		betterO, len(opt), 100*float64(betterO)/float64(len(opt)))

	// Take the biggest predicted win and check it with simulated TCP.
	var best core.BandwidthResult
	for _, r := range pess {
		if r.Ratio() > best.Ratio() || best.DefaultKBs == 0 {
			best = r
		}
	}
	defRTT, defLoss, _ := ds.TransferMeans(best.Key)
	leg1RTT, leg1Loss, _ := ds.TransferMeans(dataset.PairKey{Src: best.Key.Src, Dst: best.Via})
	leg2RTT, leg2Loss, _ := ds.TransferMeans(dataset.PairKey{Src: best.Via, Dst: best.Key.Dst})
	relayRTT := leg1RTT.Mean + leg2RTT.Mean
	relayLoss := 1 - (1-leg1Loss.Mean)*(1-leg2Loss.Mean)

	fmt.Printf("\nbiggest predicted win: %v via relay %d (%.1fx by the model)\n",
		best.Key, best.Via, best.Ratio())
	simCfg := tcpsim.DefaultConfig()
	direct, err := tcpsim.Simulate(simCfg, rand.New(rand.NewSource(1)), defRTT.Mean, defLoss.Mean, 300)
	if err != nil {
		log.Fatal(err)
	}
	relayed, err := tcpsim.Simulate(simCfg, rand.New(rand.NewSource(2)), relayRTT, relayLoss, 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulated TCP, default path: %.1f kB/s (model said %.1f)\n",
		direct.ThroughputKBs, best.DefaultKBs)
	fmt.Printf("  simulated TCP, relay path:   %.1f kB/s (model said %.1f)\n",
		relayed.ThroughputKBs, best.AltKBs)
	if relayed.ThroughputKBs > direct.ThroughputKBs {
		fmt.Println("  -> the relay's advantage survives an actual (simulated) transfer")
	} else {
		fmt.Println("  -> the simulated transfer did not confirm the model's pick")
	}
}
