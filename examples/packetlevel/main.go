// Packetlevel: unmodified net.Conn protocol code over the simulated
// Internet.
//
// The packet-level data plane (internal/packetnet) exposes the suite's
// synthetic topology through a drop-in dial/listen sockets API: Dial
// and Listen return real net.Conn/net.Listener values whose bytes ride
// TCP Reno segments across the same links, queues, and background load
// the measurement campaigns sample. This example runs two ordinary
// protocol loops against it — a line echo and a bulk transfer — then
// compares the observed goodput with the Mathis prediction for the
// same path state.
//
// Run with: go run ./examples/packetlevel
package main

import (
	"fmt"
	"io"
	"log"
	"net"

	"pathsel/internal/experiments"
	"pathsel/internal/forward"
	"pathsel/internal/packetnet"
	"pathsel/internal/tcpmodel"
)

func main() {
	fmt.Println("building the measurement suite (quick preset)...")
	s, err := experiments.Build(experiments.Config{Seed: 1, Preset: experiments.Quick})
	if err != nil {
		log.Fatal(err)
	}
	fwd, ns := s.D2Forwarding()

	cfg := packetnet.DefaultConfig()
	cfg.Seed = 1
	n, err := packetnet.New(s.TopoD2, ns, forward.NewCache(fwd), cfg)
	if err != nil {
		log.Fatal(err)
	}
	src := s.TopoD2.Hosts[0].ID
	dst := s.TopoD2.Hosts[1].ID

	// An echo server: note it is written against net.Listener/net.Conn
	// only — nothing in it knows the network is simulated.
	ln, err := n.Listen(dst, 7)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(c)
		}
	}()

	c, err := n.Dial(src, dst, 7)
	if err != nil {
		log.Fatal(err)
	}
	msg := []byte("hello through the synthetic Internet\n")
	if _, err := c.Write(msg); err != nil {
		log.Fatal(err)
	}
	back := make([]byte, len(msg))
	if _, err := io.ReadFull(c, back); err != nil {
		log.Fatal(err)
	}
	c.Close()
	fmt.Printf("echo over host %d -> host %d: %q (sim clock now %.3fs)\n",
		src, dst, string(back), float64(n.Now()))

	// A bulk transfer on the same plane, against a fresh network so the
	// clock starts at zero.
	n2, err := packetnet.New(s.TopoD2, ns, forward.NewCache(fwd), cfg)
	if err != nil {
		log.Fatal(err)
	}
	const dur = 30.0
	st, err := n2.Transfer(src, dst, 0, dur)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbulk transfer, %gs: %d bytes delivered, %.1f KB/s goodput, srtt %.0f ms\n",
		dur, st.Delivered, st.GoodputKBs, st.SRTTMs)
	fmt.Printf("sender sent %d segments: %d retransmits (%d fast, %d timeouts)\n",
		st.Sender.SegmentsSent, st.Sender.Retransmits,
		st.Sender.FastRetransmits, st.Sender.Timeouts)
	fmt.Printf("data plane: %d packets, %d queue drops, %d random losses\n",
		st.Net.PacketsSent, st.Net.QueueDrops, st.Net.RandomLosses)

	// What does the closed-form model expect for this path right now?
	path, err := fwd.HostPath(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	rev, err := fwd.HostPath(dst, src)
	if err != nil {
		log.Fatal(err)
	}
	fs, err := ns.EvalHostPath(src, dst, path.Links, 0)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := ns.EvalHostPath(dst, src, rev.Links, 0)
	if err != nil {
		log.Fatal(err)
	}
	rtt := fs.DelayMs + rs.DelayMs
	loss := 1 - (1-fs.LossProb)*(1-rs.LossProb)
	pred, err := tcpmodel.Default().BandwidthKBs(rtt, loss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npath state at t=0: rtt %.0f ms, two-way loss %.3f\n", rtt, loss)
	fmt.Printf("Mathis prediction %.1f KB/s vs packet-level %.1f KB/s (ratio %.2f)\n",
		pred, st.GoodputKBs, st.GoodputKBs/pred)

	fmt.Println("\nreading: the sockets API lets protocol code written for the real")
	fmt.Println("net package run unchanged on the simulated Internet, and its")
	fmt.Println("goodput lands where the analytic model says it should.")
}
