// Sourceroute: validate the paper's conservativity claim with the one
// mechanism its authors lacked.
//
// The study estimated alternate-path quality by composing host-to-host
// measurements, which double-charges every relay's access link; the
// authors argued the estimates were therefore conservative, but the real
// Internet gave them no way to check (loose source routing was widely
// disabled). Our synthetic Internet can evaluate the true router-level
// source-routed path through the same relay, so this example asks: when
// the paper's methodology predicts a better alternate, how does the real
// detour compare?
//
// Run with: go run ./examples/sourceroute
package main

import (
	"fmt"
	"log"

	"pathsel/internal/experiments"
)

func main() {
	fmt.Println("building the measurement suite (quick preset)...")
	s, err := experiments.Build(experiments.Config{Seed: 1, Preset: experiments.Quick})
	if err != nil {
		log.Fatal(err)
	}

	res, err := experiments.ValidateConservativity(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npairs with a one-hop synthetic alternate:      %d\n", res.Pairs)
	fmt.Printf("alternate predicted better than default:       %d\n", res.PredictedBetter)
	fmt.Printf("confirmed better when actually source-routed:  %d (%.0f%%)\n",
		res.ConfirmedBetter, 100*res.ConfirmationFraction())
	fmt.Printf("true detour at least as good as the estimate:  %d (%.0f%%)\n",
		res.SourceRouteBeatsEstimate, 100*res.ConservativeFraction())

	fmt.Println("\nreading: the synthetic-composition methodology is conservative —")
	fmt.Println("router-level detours are usually even better than it predicts,")
	fmt.Println("because they skip the relay host's access network entirely.")

	// Bonus: the triangulation view of the same phenomenon.
	tri, err := experiments.Triangulation(s)
	if err != nil {
		log.Fatal(err)
	}
	violations := 0
	for _, r := range tri {
		if r.ViolatesTriangle() {
			violations++
		}
	}
	fmt.Printf("\ntriangle-inequality violations in delay space: %d of %d pairs (%.0f%%)\n",
		violations, len(tri), 100*float64(violations)/float64(len(tri)))
	fmt.Println("(relayed propagation beating the direct path is exactly the")
	fmt.Println("default-path inflation the paper set out to measure)")
}
