// Failover: what the paper's finding means when routes actually break.
//
// The study showed alternate paths routinely beat default routes in
// steady state. This example looks at the dynamic case that motivated
// RON: when a BGP session fails and the routing system reconverges (or
// fails to), can an overlay keep a host pair connected through a relay
// while the default path is gone or degraded?
//
// We build a failure timeline over a synthetic Internet, find the
// moments when some pair's default path changes or disappears, and ask
// whether a one-hop relay path would have carried the traffic.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"pathsel/internal/bgp"
	"pathsel/internal/dynamics"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/topology"
)

func main() {
	cfg := topology.DefaultConfig(topology.Era1999)
	cfg.NumHosts = 12
	top, err := topology.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())

	dynCfg := dynamics.DefaultConfig()
	dynCfg.FailuresPerAdjacencyPerWeek = 0.25 // a busier-than-usual week
	tl, err := dynamics.Build(top, g, dynCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one simulated week, %d routing epochs\n", len(tl.Epochs()))

	// The steady-state forwarder (epoch with no failures) for reference.
	table, err := bgp.Compute(top)
	if err != nil {
		log.Fatal(err)
	}
	steady := forward.New(top, g, table)

	hosts := top.Hosts
	affected, masked, unreachable, overlaySaves := 0, 0, 0, 0
	for _, ep := range tl.Epochs() {
		if len(ep.Failed) == 0 {
			continue
		}
		mid := ep.Start + (ep.End-ep.Start)/2
		for i := 0; i < len(hosts); i++ {
			for j := 0; j < len(hosts); j++ {
				if i == j {
					continue
				}
				src, dst := hosts[i].ID, hosts[j].ID
				before, err := steady.HostPath(src, dst)
				if err != nil {
					continue
				}
				during, err := tl.PathAt(src, dst, mid)
				switch {
				case err != nil:
					// Default routing lost the pair entirely. Can a
					// relay reach it? (The overlay routes around the
					// failure at the application layer.)
					affected++
					unreachable++
					for r := 0; r < len(hosts); r++ {
						if r == i || r == j {
							continue
						}
						ep2 := tl.EpochAt(mid)
						_, e1 := ep2.Fwd.HostPath(src, hosts[r].ID)
						_, e2 := ep2.Fwd.HostPath(hosts[r].ID, dst)
						if e1 == nil && e2 == nil {
							overlaySaves++
							break
						}
					}
				case !sameRouters(before.Routers, during.Routers):
					// Routing changed but recovered on its own.
					affected++
					masked++
				}
			}
		}
	}
	fmt.Printf("\npair-epochs where a failure touched the default route: %d\n", affected)
	fmt.Printf("  rerouted by BGP reconvergence:   %d\n", masked)
	fmt.Printf("  unreachable by default routing:  %d\n", unreachable)
	if unreachable > 0 {
		fmt.Printf("  of those, reachable via a relay: %d (%.0f%%)\n",
			overlaySaves, 100*float64(overlaySaves)/float64(unreachable))
	}
	fmt.Println("\nreading: policy routing does not always find a path even when one")
	fmt.Println("exists (valley-free export hides backup routes); an overlay that")
	fmt.Println("relays through another host recovers connectivity the way RON later did.")
}

func sameRouters(a, b []topology.RouterID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
