// Diurnal: reproduce the paper's Section 6.3 time-of-day analysis as a
// standalone study — run a one-week measurement campaign, split the
// samples into the paper's weekend and six-hour weekday buckets, and see
// when alternate paths help most.
//
// Run with: go run ./examples/diurnal
package main

import (
	"fmt"
	"log"
	"os"

	"pathsel/internal/bgp"
	"pathsel/internal/core"
	"pathsel/internal/dataset"
	"pathsel/internal/forward"
	"pathsel/internal/igp"
	"pathsel/internal/measure"
	"pathsel/internal/netsim"
	"pathsel/internal/probe"
	"pathsel/internal/report"
	"pathsel/internal/topology"
)

func main() {
	topCfg := topology.DefaultConfig(topology.Era1999)
	topCfg.NumHosts = 14
	top, err := topology.Generate(topCfg)
	if err != nil {
		log.Fatal(err)
	}
	g := igp.New(top, igp.DefaultConfig())
	table, err := bgp.Compute(top)
	if err != nil {
		log.Fatal(err)
	}
	fwd := forward.New(top, g, table)
	net := netsim.New(top, netsim.ConfigFor(topology.Era1999))
	prb := probe.New(top, fwd, net, probe.DefaultConfig())

	var hosts []topology.HostID
	for _, h := range top.Hosts {
		hosts = append(hosts, h.ID)
	}
	fmt.Println("running a one-week campaign (UW3-style)...")
	ds, err := measure.Run(top, prb, measure.Spec{
		Name:            "diurnal",
		Hosts:           hosts,
		Method:          measure.MethodTraceroute,
		Scheduler:       measure.ExponentialPairs,
		MeanIntervalSec: 30,
		DurationSec:     7 * 86400,
		RateLimit:       measure.FilterHosts,
		MinMeasurements: dataset.MinMeasurementsPerPath,
		Seed:            3,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := ds.Characteristics()
	fmt.Printf("  %d hosts, %d traceroutes\n\n", c.Hosts, c.Measurements)

	analyzer := core.NewAnalyzer(ds)
	rows := [][]string{{"Bucket", "Pairs", "Alt better", "Mean gain (ms)", "p90 gain (ms)"}}
	for _, b := range netsim.Buckets() {
		results, err := analyzer.BucketResults(core.MetricRTT, b, 0)
		if err != nil {
			log.Fatal(err)
		}
		cdf := core.ImprovementCDF(results)
		if cdf.N() == 0 {
			rows = append(rows, []string{b.String(), "0", "-", "-", "-"})
			continue
		}
		mean := 0.0
		for _, v := range cdf.Values() {
			mean += v
		}
		mean /= float64(cdf.N())
		p90, _ := cdf.Quantile(0.90)
		rows = append(rows, []string{
			b.String(),
			fmt.Sprint(cdf.N()),
			fmt.Sprintf("%.0f%%", 100*cdf.FractionAbove(0)),
			fmt.Sprintf("%.1f", mean),
			fmt.Sprintf("%.1f", p90),
		})
	}
	if err := report.Table(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe paper's finding: benefit is largest during peak working hours")
	fmt.Println("(congestion creates opportunities) and smallest on the weekend.")
}
