module pathsel

go 1.22
