module pathsel

go 1.23
